"""The memory manager: mechanics shared by every placement policy.

Policies decide *what* to do (which page to promote, demote or evict);
:class:`MemoryManager` performs the operation — updating the page
table, the frame allocators, the DMA counters, the model-level event
accounting and the NVM wear histogram — so that every policy is
measured by exactly the same bookkeeping.  This mirrors the paper's
setup, where the proposed scheme and CLOCK-DWF run inside the same
Linux-memory-management-like framework and are scored by the same
models.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.memory.accounting import AccessAccounting, WearAccounting
from repro.memory.specs import HybridMemorySpec
from repro.mmu.dma import DMAEngine
from repro.mmu.frames import FrameAllocator
from repro.mmu.page import PageLocation, PageTableEntry
from repro.mmu.page_table import PageTable

if TYPE_CHECKING:  # repro.obs imports mmu.page; keep this edge typing-only
    from repro.obs.bus import EventBus


class MemoryManager:
    """Mechanical layer of the hybrid memory: placement and accounting."""

    def __init__(self, spec: HybridMemorySpec) -> None:
        self.spec = spec
        self.page_table = PageTable()
        self.dram = FrameAllocator(spec.dram_pages)
        self.nvm = FrameAllocator(spec.nvm_pages)
        self.dma = DMAEngine(page_size=spec.page_size)
        self.accounting = AccessAccounting()
        self.wear = WearAccounting(page_factor=spec.page_factor)
        self._post_reset_fill_credit = 0
        #: Optional observability bus; the simulator attaches one when
        #: event collection is requested.  ``None`` keeps every path
        #: below a single predictable branch away from the status quo.
        self.events: "EventBus | None" = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def location_of(self, page: int) -> PageLocation:
        entry = self.page_table.lookup(page)
        return entry.location if entry else PageLocation.DISK

    def is_resident(self, page: int) -> bool:
        return page in self.page_table

    def _allocator(self, location: PageLocation) -> FrameAllocator:
        if location is PageLocation.DRAM:
            return self.dram
        if location is PageLocation.NVM:
            return self.nvm
        raise ValueError(f"{location} has no frame allocator")

    def has_free(self, location: PageLocation) -> bool:
        return not self._allocator(location).full

    # ------------------------------------------------------------------
    # Request servicing
    # ------------------------------------------------------------------
    def record_request(self, is_write: bool) -> None:
        """Count an arriving request (exactly once per trace record).

        Also advances the event clock when a bus is attached: event
        indexes are exactly "requests recorded so far".
        """
        if is_write:
            self.accounting.write_requests += 1
        else:
            self.accounting.read_requests += 1
        events = self.events
        if events is not None:
            events.clock += 1

    def serve_hit(self, page: int, is_write: bool) -> PageTableEntry:
        """Service a request for a resident page in place.

        Requests to a page with a live DRAM copy are served by the
        copy (DRAM hit); writes dirty the copy instead of wearing NVM.
        """
        entry = self.page_table.lookup(page)
        if entry is None:
            raise KeyError(f"page {page} is not resident")
        if entry.location is PageLocation.DRAM or entry.has_copy:
            if is_write:
                self.accounting.dram_write_hits += 1
                if entry.has_copy:
                    entry.copy_dirty = True
            else:
                self.accounting.dram_read_hits += 1
        else:
            if is_write:
                self.accounting.nvm_write_hits += 1
                self.wear.record_request_write(page)
            else:
                self.accounting.nvm_read_hits += 1
        entry.mark_access(is_write)
        return entry

    # ------------------------------------------------------------------
    # Page movement
    # ------------------------------------------------------------------
    def fault_fill(
        self, page: int, destination: PageLocation, is_write: bool
    ) -> PageTableEntry:
        """Handle a page fault: load ``page`` from disk into ``destination``.

        The faulting request itself is consumed by the fault (Eq. 1
        charges only the disk latency for it); the request's direction
        decides the page's initial dirty state.
        """
        if not destination.in_memory:
            raise ValueError("fault destination must be a memory module")
        if self.is_resident(page):
            raise KeyError(f"page {page} is already resident")
        frame = self._allocator(destination).allocate()
        entry = PageTableEntry(
            page=page,
            location=destination,
            frame=frame,
            dirty=is_write,
            referenced=True,
            access_count=1,
            write_count=1 if is_write else 0,
        )
        self.page_table.insert(entry)
        self.dma.transfer_page(PageLocation.DISK, destination)
        if is_write:
            self.accounting.write_faults += 1
        else:
            self.accounting.read_faults += 1
        if destination is PageLocation.DRAM:
            self.accounting.faults_filled_dram += 1
        else:
            self.accounting.faults_filled_nvm += 1
            self.wear.record_fault_fill(page)
        events = self.events
        if events is not None:
            events.page_fault(
                page, destination is PageLocation.DRAM, is_write
            )
        return entry

    def migrate(self, page: int, destination: PageLocation) -> PageTableEntry:
        """Move a resident page between the two memory modules."""
        if not destination.in_memory:
            raise ValueError("migration destination must be a memory module")
        entry = self.page_table.lookup(page)
        if entry is None:
            raise KeyError(f"page {page} is not resident")
        if entry.has_copy:
            raise ValueError(
                f"page {page} has a DRAM copy; drop it before migrating"
            )
        source = entry.location
        if source is destination:
            raise ValueError(f"page {page} already lives in {destination}")
        frame = self._allocator(destination).allocate()
        self._allocator(source).release(entry.frame)
        entry.location = destination
        entry.frame = frame
        self.dma.transfer_page(source, destination)
        if destination is PageLocation.DRAM:
            self.accounting.migrations_to_dram += 1
        else:
            self.accounting.migrations_to_nvm += 1
            self.wear.record_migration_in(page)
        events = self.events
        if events is not None:
            events.migration(
                page,
                destination is PageLocation.DRAM,
                entry.access_count,
                entry.write_count,
            )
        return entry

    def swap(self, page_a: int, page_b: int) -> None:
        """Exchange two resident pages living in different modules.

        Models the promote-one/demote-one exchange that happens when a
        page earns a migration to a full DRAM: the DMA engine stages
        one page through a buffer and both cross the interconnect.
        Counts one migration in each direction.
        """
        entry_a = self.page_table.lookup(page_a)
        entry_b = self.page_table.lookup(page_b)
        if entry_a is None or entry_b is None:
            missing = page_a if entry_a is None else page_b
            raise KeyError(f"page {missing} is not resident")
        if entry_a.location is entry_b.location:
            raise ValueError(
                "swap requires pages in different modules, both are in "
                f"{entry_a.location}"
            )
        entry_a.location, entry_b.location = entry_b.location, entry_a.location
        entry_a.frame, entry_b.frame = entry_b.frame, entry_a.frame
        events = self.events
        transfer_page = self.dma.transfer_page
        record_migration_in = self.wear.record_migration_in
        dram, nvm = PageLocation.DRAM, PageLocation.NVM
        for entry in (entry_a, entry_b):
            transfer_page(nvm if entry.location is dram else dram,
                          entry.location)
            if entry.location is dram:
                self.accounting.migrations_to_dram += 1
            else:
                self.accounting.migrations_to_nvm += 1
                record_migration_in(entry.page)
            if events is not None:
                events.migration(
                    entry.page,
                    entry.location is dram,
                    entry.access_count,
                    entry.write_count,
                )

    # ------------------------------------------------------------------
    # DRAM-as-cache support (the caching school of paper Section III)
    # ------------------------------------------------------------------
    def create_copy(self, page: int) -> PageTableEntry:
        """Fill a DRAM copy of an NVM-resident page (inclusive cache).

        Cost model: the fill reads the page from NVM and writes it into
        DRAM — exactly a NVM->DRAM migration's traffic — so it is
        charged as one migration-to-DRAM in Eq. 1/2.
        """
        entry = self.page_table.lookup(page)
        if entry is None:
            raise KeyError(f"page {page} is not resident")
        if entry.location is not PageLocation.NVM:
            raise ValueError("only NVM-resident pages can be cached")
        if entry.has_copy:
            raise ValueError(f"page {page} already has a DRAM copy")
        entry.copy_frame = self.dram.allocate()
        entry.copy_dirty = False
        self.dma.transfer_page(PageLocation.NVM, PageLocation.DRAM)
        self.accounting.migrations_to_dram += 1
        events = self.events
        if events is not None:
            events.migration(
                page, True, entry.access_count, entry.write_count,
                trigger="copy",
            )
        return entry

    def drop_copy(self, page: int) -> bool:
        """Drop a page's DRAM copy; dirty copies write back into NVM.

        Returns True when a write-back happened.  The write-back's
        traffic equals a DRAM->NVM migration and is charged as one.
        """
        entry = self.page_table.lookup(page)
        if entry is None or not entry.has_copy:
            raise KeyError(f"page {page} has no DRAM copy")
        assert entry.copy_frame is not None
        self.dram.release(entry.copy_frame)
        wrote_back = entry.copy_dirty
        if wrote_back:
            self.dma.transfer_page(PageLocation.DRAM, PageLocation.NVM)
            self.accounting.migrations_to_nvm += 1
            self.wear.record_migration_in(page)
        entry.copy_frame = None
        entry.copy_dirty = False
        events = self.events
        if events is not None:
            events.migration(
                page, False, entry.access_count, entry.write_count,
                trigger="writeback" if wrote_back else "copy-drop",
            )
        return wrote_back

    def evict_to_disk(self, page: int) -> PageTableEntry:
        """Evict a resident page to disk (write-back when dirty)."""
        cached = self.page_table.lookup(page)
        if cached is not None and cached.has_copy:
            raise ValueError(
                f"page {page} still has a DRAM copy; drop it first"
            )
        entry = self.page_table.remove(page)
        self._allocator(entry.location).release(entry.frame)
        self.dma.transfer_page(entry.location, PageLocation.DISK)
        if entry.dirty:
            self.accounting.dirty_evictions += 1
        else:
            self.accounting.clean_evictions += 1
        events = self.events
        if events is not None:
            events.eviction(
                page,
                entry.location is PageLocation.DRAM,
                entry.dirty,
                entry.access_count,
                entry.write_count,
            )
        return entry

    # ------------------------------------------------------------------
    # Warm-up handling
    # ------------------------------------------------------------------
    def reset_accounting(self) -> None:
        """Zero the event counters and wear, keeping memory contents.

        The paper measures only the region of interest after warming the
        memory ("the input of all benchmarks was set to the largest
        dataset available in order to minimize the effect of starting
        from cold memory"); the runner replays a warm-up prefix, calls
        this, then measures the rest.
        """
        self.accounting = AccessAccounting()
        self.wear = WearAccounting(page_factor=self.spec.page_factor)
        self._post_reset_fill_credit = len(self.page_table)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:  # repro: cold
        """Cross-check page table, frame pools and accounting."""
        dram_resident = self.page_table.count_in(PageLocation.DRAM)
        nvm_resident = self.page_table.count_in(PageLocation.NVM)
        copies = sum(
            1 for entry in self.page_table.entries() if entry.has_copy
        )
        if dram_resident + copies != self.dram.used:
            raise AssertionError(
                f"DRAM pages ({dram_resident}) + copies ({copies}) != "
                f"frames in use ({self.dram.used})"
            )
        if nvm_resident != self.nvm.used:
            raise AssertionError(
                f"NVM pages ({nvm_resident}) != frames in use "
                f"({self.nvm.used})"
            )
        # Frame identity: every entry references an allocated frame in
        # its own module and no two entries share one (a count match
        # alone cannot see aliasing or cross-tier leaks).
        owners: dict[tuple[PageLocation, int], int] = {}
        for entry in self.page_table.entries():
            claims = [(entry.location, entry.frame)]
            if entry.has_copy:
                assert entry.copy_frame is not None
                claims.append((PageLocation.DRAM, entry.copy_frame))
            for location, frame in claims:
                if not self._allocator(location).is_allocated(frame):
                    raise AssertionError(
                        f"page {entry.page} references unallocated "
                        f"{location} frame {frame}"
                    )
                owner = owners.setdefault((location, frame), entry.page)
                if owner != entry.page:
                    raise AssertionError(
                        f"{location} frame {frame} is double-booked by "
                        f"pages {owner} and {entry.page}"
                    )
        self.accounting.validate()
        # Every page currently resident arrived via exactly one fault
        # fill and never left, or was re-faulted after an eviction (or
        # was already resident when the accounting was last reset).
        fills = self.accounting.page_faults + self._post_reset_fill_credit
        evictions = self.accounting.evictions_to_disk
        if fills - evictions != len(self.page_table):
            raise AssertionError(
                f"fills ({fills}) - evictions ({evictions}) != resident pages "
                f"({len(self.page_table)})"
            )
