"""Page-level abstractions of the Linux-like memory-management layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PageLocation(enum.Enum):
    """Where a virtual page currently lives."""

    DRAM = "dram"
    NVM = "nvm"
    DISK = "disk"

    # Members are singletons, so identity hashing is equivalent to the
    # default ``hash(self._name_)`` — but runs in C.  Locations key the
    # DMA transfer log and frame-validation dicts on the fault path.
    __hash__ = object.__hash__

    @property
    def in_memory(self) -> bool:
        return self is not PageLocation.DISK

    def __str__(self) -> str:
        return self.value.upper()


@dataclass(slots=True)
class PageTableEntry:
    """Per-page state tracked by the OS.

    Mirrors the relevant bits of a real PTE: presence (implied by
    ``location``), the backing frame, the dirty bit (drives write-back
    on eviction) and an accessed bit plus counters usable by clock-style
    policies.

    For DRAM-as-cache architectures (the caching school of paper
    Section III) an NVM-resident page may additionally hold a DRAM
    *copy*: ``copy_frame`` points at it and ``copy_dirty`` tracks
    whether it must be written back into NVM when dropped.
    """

    page: int
    location: PageLocation
    frame: int
    dirty: bool = False
    referenced: bool = False
    access_count: int = 0
    write_count: int = 0
    copy_frame: int | None = None
    copy_dirty: bool = False

    @property
    def has_copy(self) -> bool:
        return self.copy_frame is not None

    def mark_access(self, is_write: bool) -> None:
        self.referenced = True
        self.access_count += 1
        if is_write:
            self.write_count += 1
            self.dirty = True
