"""The trace-driven hybrid-memory simulator and its result object.

This is the framework the paper describes as "developed similar to the
Linux memory management layer": it feeds a memory trace to a placement
policy running over the shared :class:`~repro.mmu.manager.MemoryManager`
mechanics, then evaluates the paper's performance, power and endurance
models on the resulting event counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.memory.accounting import AccessAccounting, WearAccounting
from repro.memory.endurance import (
    EnduranceReport,
    NVMWriteBreakdown,
    compute_nvm_writes,
    endurance_report,
)
from repro.memory.metrics import PerformanceBreakdown, compute_performance
from repro.memory.power import PowerBreakdown, compute_power
from repro.memory.specs import HybridMemorySpec
from repro.mmu.manager import MemoryManager
from repro.obs.bus import EventBus, Sink
from repro.obs.config import EventConfig
from repro.obs.sinks import (
    BeneficialMigrationClassifier,
    BufferSink,
    IntervalAggregator,
)
from repro.obs.summary import EventSummary
from repro.sampling.summary import SamplingSummary
from repro.trace.trace import Trace

if TYPE_CHECKING:  # avoid a package-level cycle with repro.policies
    from repro.policies.base import HybridMemoryPolicy
    from repro.trace.source import TraceSource

#: Builds a policy over a fresh memory manager (same shape as
#: :data:`repro.policies.base.PolicyFactory`; duplicated here so the
#: mmu layer does not import the policies package at module load).
PolicyFactory = Callable[[MemoryManager], "HybridMemoryPolicy"]


@dataclass(frozen=True)
class RunResult:
    """Everything measured about one (policy, workload, machine) run."""

    workload: str
    policy: str
    spec: HybridMemorySpec
    accounting: AccessAccounting
    wear: WearAccounting
    performance: PerformanceBreakdown
    power: PowerBreakdown
    nvm_writes: NVMWriteBreakdown
    endurance: EnduranceReport
    #: Distilled event stream; only present when the run was driven
    #: with ``events=EventConfig(...)``.
    events: EventSummary | None = None
    #: Sample provenance and confidence intervals; only present when
    #: the run came from ``engine="sampled"`` (:mod:`repro.sampling`).
    sampling: SamplingSummary | None = None

    @property
    def amat(self) -> float:
        return self.performance.amat

    @property
    def appr(self) -> float:
        return self.power.appr

    @property
    def hit_ratio(self) -> float:
        return self.accounting.hit_ratio

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form: everything needed to rebuild the result.

        This is the serialisation the parallel executor ships across
        the worker pool and the disk cache persists; it must round-trip
        losslessly through :meth:`from_dict` (floats survive JSON via
        repr round-tripping, so equality is exact).
        """
        return {
            "workload": self.workload,
            "policy": self.policy,
            "spec": self.spec.to_dict(),
            "accounting": self.accounting.to_dict(),
            "wear": self.wear.to_dict(),
            "performance": self.performance.to_dict(),
            "power": self.power.to_dict(),
            "nvm_writes": self.nvm_writes.to_dict(),
            "endurance": self.endurance.to_dict(),
            "events": (
                self.events.to_dict() if self.events is not None else None
            ),
            "sampling": (
                self.sampling.to_dict() if self.sampling is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        events = data.get("events")
        sampling = data.get("sampling")
        return cls(
            workload=data["workload"],
            policy=data["policy"],
            spec=HybridMemorySpec.from_dict(data["spec"]),
            accounting=AccessAccounting.from_dict(data["accounting"]),
            wear=WearAccounting.from_dict(data["wear"]),
            performance=PerformanceBreakdown.from_dict(data["performance"]),
            power=PowerBreakdown.from_dict(data["power"]),
            nvm_writes=NVMWriteBreakdown.from_dict(data["nvm_writes"]),
            endurance=EnduranceReport.from_dict(data["endurance"]),
            events=(
                EventSummary.from_dict(events) if events is not None
                else None
            ),
            sampling=(
                SamplingSummary.from_dict(sampling) if sampling is not None
                else None
            ),
        )

    def summary(self) -> dict[str, float]:
        """Flat metric dict used by reports and regression tests."""
        accounting = self.accounting
        return {
            "requests": float(accounting.total_requests),
            "hit_ratio": accounting.hit_ratio,
            "dram_hit_ratio": accounting.p_hit_dram,
            "nvm_hit_ratio": accounting.p_hit_nvm,
            "miss_ratio": accounting.p_miss,
            "migrations_to_dram": float(accounting.migrations_to_dram),
            "migrations_to_nvm": float(accounting.migrations_to_nvm),
            "amat_ns": self.performance.amat * 1e9,
            "appr_nj": self.power.appr * 1e9,
            "nvm_writes": float(self.nvm_writes.total),
        }


class HybridMemorySimulator:
    """Drives one policy over one trace and scores it with the models."""

    def __init__(
        self,
        spec: HybridMemorySpec,
        policy_factory: PolicyFactory,
        validate_every: int = 0,
        inter_request_gap: float = 0.0,
        sanitize: bool | None = None,
        batch: bool = True,
        events: EventConfig | EventBus | None = None,
    ) -> None:
        """
        Parameters
        ----------
        spec:
            Machine configuration.
        policy_factory:
            Builds the policy over a fresh memory manager.
        validate_every:
            When positive, run the full cross-layer invariant check
            every N requests (slow; meant for tests).
        inter_request_gap:
            Mean compute/LLC time between consecutive main-memory
            requests (seconds); feeds the static-power proration.
        sanitize:
            Wrap the policy in the runtime sanitizer
            (:class:`repro.analysis.sanitizer.SanitizedPolicy`), which
            asserts the bookkeeping invariants after every request.
            ``None`` defers to the ``REPRO_SANITIZE`` environment
            variable (the test suite turns it on globally).
        batch:
            Replay through the policy's ``access_batch`` kernel
            (default).  ``False`` forces the per-request ``access``
            loop — the reference path the golden-equivalence tests
            compare against.  Results are bit-identical either way.
        events:
            ``None`` (default) disables observability entirely — the
            hot paths stay a single predictable branch away from the
            uninstrumented code.  An :class:`EventConfig` attaches the
            standard sinks for the measured region and publishes an
            :class:`EventSummary` on the result.  A pre-built
            :class:`EventBus` (caller-owned sinks, e.g. a streaming
            :class:`JsonlTraceSink`) is attached as-is and no summary
            is built.
        """
        self.spec = spec
        self.mm = MemoryManager(spec)
        self.policy = policy_factory(self.mm)
        if sanitize is None:
            from repro.analysis.sanitizer import sanitize_default
            sanitize = sanitize_default()
        self.sanitize = bool(sanitize)
        if self.sanitize:
            from repro.analysis.sanitizer import SanitizedPolicy
            self.policy = SanitizedPolicy(self.policy)
        self.validate_every = validate_every
        self.inter_request_gap = inter_request_gap
        self.batch = batch
        self.events = events
        self._event_summary: EventSummary | None = None

    def run(self, trace: "Trace | TraceSource", warmup_fraction: float = 0.0,
            warmup_requests: int | None = None) -> RunResult:
        """Simulate the trace and evaluate the models.

        ``trace`` may be a materialised :class:`Trace` (replayed as one
        whole-trace chunk, exactly as before) or any
        :class:`~repro.trace.source.TraceSource` — both feed the same
        chunked drive loop, whose results are bit-identical across
        chunkings (pinned by the chunk-boundary equivalence suite).

        ``warmup_fraction`` of the trace is replayed first to populate
        memory and train the policy, then the accounting is reset and
        only the remainder is measured (the paper's warm-start ROI
        measurement).  The event bus, when configured, observes only
        the measured region: it is attached after the warm-up reset,
        so event indexes are 1-based measured-request ordinals.

        ``warmup_requests`` overrides the boundary with an explicit
        request count.  The sampled engine uses this to keep warm-up
        fidelity: its boundary is computed on the *full* trace and
        mapped into the sample, which a fraction of the (shorter)
        sampled trace could not express exactly.
        """
        return self.run_source(trace, chunk_size=None,
                               warmup_fraction=warmup_fraction,
                               warmup_requests=warmup_requests)

    def run_source(
        self,
        source: "Trace | TraceSource",
        chunk_size: int | None = None,
        warmup_fraction: float = 0.0,
        warmup_requests: int | None = None,
    ) -> RunResult:
        """Simulate a (possibly streaming) source chunk by chunk.

        Peak memory is one chunk plus the resident page tables — a
        trace-file or generator source of any length replays at
        constant memory.  ``chunk_size=None`` lets the source pick its
        natural chunking (whole trace for a materialised
        :class:`Trace`, :data:`~repro.trace.source.DEFAULT_CHUNK_REQUESTS`
        for streams).

        Sources of unknown length (``request_count is None``) need an
        explicit ``warmup_requests`` (a *fraction* of an unknown total
        is meaningless) and — when events are collected — an explicit
        ``EventConfig.interval``.
        """
        from repro.trace.source import as_source

        source = as_source(source)
        total = source.request_count
        if warmup_requests is not None:
            if warmup_requests < 0 or (
                    total is not None and warmup_requests > total):
                raise ValueError(
                    "warmup_requests must be within the trace length")
            boundary = warmup_requests
        else:
            if not 0.0 <= warmup_fraction < 1.0:
                raise ValueError("warmup_fraction must be in [0, 1)")
            if warmup_fraction > 0.0 and total is None:
                raise ValueError(
                    "warmup_fraction needs a source of known length; "
                    "pass warmup_requests for streaming sources")
            boundary = (
                int(total * warmup_fraction)
                if total is not None and warmup_fraction > 0.0 else 0
            )
        self._event_summary = None
        bus: EventBus | None = None
        if self.events is not None:
            measured_total = total - boundary if total is not None else None
            bus = self._build_bus(measured_total)
        if bus is not None and boundary == 0:
            self.mm.events = bus
        try:
            replayed = self._drive(source, chunk_size, boundary, bus)
        finally:
            self.mm.events = None
        if replayed < boundary:
            raise ValueError(
                f"source ended after {replayed} requests, inside the "
                f"{boundary}-request warm-up region")
        if bus is not None:
            bus.finish(self.mm)
            self._event_summary = self._summarize(bus)
        # End-of-run enforcement: every run must leave the policy's
        # structures consistent with the manager's, or the scores are
        # bookkeeping artifacts.
        self.policy.validate()
        return self.result(workload=source.name)

    def _build_bus(self, measured_requests: int | None) -> EventBus:
        events = self.events
        if isinstance(events, EventBus):
            if events.interval <= 0:
                events.interval = self._resolve_interval(
                    EventConfig(), measured_requests
                )
            return events
        assert isinstance(events, EventConfig)
        sinks: list[Sink] = [
            IntervalAggregator(self.spec, self.inter_request_gap)
        ]
        if events.classify:
            sinks.append(BeneficialMigrationClassifier(self.spec))
        if events.trace:
            sinks.append(BufferSink())
        return EventBus(sinks, interval=self._resolve_interval(
            events, measured_requests
        ))

    @staticmethod
    def _resolve_interval(config: EventConfig,
                          measured_requests: int | None) -> int:
        if config.interval > 0:
            return config.interval
        if measured_requests is None:
            raise ValueError(
                "bucket-derived event intervals need a source of known "
                "length; set an explicit EventConfig(interval=N) for "
                "streaming sources")
        return config.resolve_interval(measured_requests)

    def _summarize(self, bus: EventBus) -> EventSummary | None:
        if not isinstance(self.events, EventConfig):
            return None  # caller-owned bus: the caller owns the sinks
        aggregator = classifier = buffer = None
        for sink in bus.sinks:
            if isinstance(sink, IntervalAggregator):
                aggregator = sink
            elif isinstance(sink, BeneficialMigrationClassifier):
                classifier = sink
            elif isinstance(sink, BufferSink):
                buffer = sink
        return EventSummary(
            interval=bus.interval,
            requests=bus.clock,
            events=bus.events_seen,
            inter_request_gap=self.inter_request_gap,
            series=aggregator.series if aggregator is not None else (),
            migrations=(
                classifier.ledger if classifier is not None else None
            ),
            trace_lines=(
                tuple(buffer.lines) if buffer is not None else ()
            ),
        )

    def _drive(
        self,
        source: "TraceSource",
        chunk_size: int | None,
        boundary: int,
        bus: EventBus | None,
    ) -> int:
        """The chunked drive loop; returns total requests consumed.

        Every chunk — whatever its size — drives the same kernels as a
        whole-trace replay (the batch kernels flush their deferred
        accounting per call in their ``finally`` blocks, so totals are
        bit-identical across chunkings), ``base`` keeps the
        ``validate_every`` cadence region-relative exactly as the
        unchunked replay had it, and the warm-up reset and the event
        epochs land on the same request ordinals regardless of where
        the incoming chunk boundaries fall: chunks are carved at the
        warm-up boundary and at every ``bus.interval`` multiple.
        """
        mm = self.mm
        interval = bus.interval if bus is not None else 0
        done = 0        # requests consumed from the source
        measured = 0    # requests replayed past the warm-up boundary
        in_measured = boundary == 0
        for chunk in source.chunks(chunk_size):
            n = len(chunk)
            start = 0
            if not in_measured:
                take = min(boundary - done, n)
                if take:
                    self._replay(chunk if take == n else chunk[:take],
                                 base=done)
                    done += take
                    start = take
                if done == boundary:
                    in_measured = True
                    mm.reset_accounting()
                    if bus is not None:
                        mm.events = bus
                if start >= n:
                    continue
            if interval <= 0:
                self._replay(chunk if start == 0 else chunk[start:],
                             base=measured)
                measured += n - start
                done += n - start
                continue
            while start < n:
                stop = min(n, start + interval - measured % interval)
                part = chunk if (start == 0 and stop == n) \
                    else chunk[start:stop]
                self._replay(part, base=measured)
                measured += stop - start
                done += stop - start
                start = stop
                if measured % interval == 0:
                    bus.epoch(mm)  # type: ignore[union-attr]
        return done

    def _replay(self, trace: Trace, base: int = 0) -> None:
        # The kernel is selected once per replay — per-request code
        # never branches on sanitize/batch/validate_every (the
        # sanitizer, when on, substituted an instrumented policy at
        # construction time, so even the instrumented path is a
        # straight loop).
        if self.validate_every > 0:
            access = self.policy.access
            validate = self.policy.validate
            validate_every = self.validate_every
            for index, (page, is_write) in enumerate(
                trace.iter_pairs(), base + 1
            ):
                access(page, is_write)
                if index % validate_every == 0:
                    validate()
        elif self.batch:
            # One .tolist() each: the whole span becomes native
            # ints/bools up front, and the policy's batch kernel runs
            # without per-request dispatch from the simulator.
            self.policy.access_batch(
                trace.pages.tolist(), trace.is_write.tolist()
            )
        else:
            access = self.policy.access
            for page, is_write in trace.iter_pairs():
                access(page, is_write)

    def result(self, workload: str = "trace") -> RunResult:
        """Score the accumulated events (callable mid-run as well)."""
        accounting = self.mm.accounting
        performance = compute_performance(accounting, self.spec)
        power = compute_power(
            accounting, self.spec, performance,
            inter_request_gap=self.inter_request_gap,
        )
        nvm_writes = compute_nvm_writes(accounting, self.spec)
        elapsed = (
            (performance.memory_time + self.inter_request_gap)
            * accounting.total_requests
        )
        endurance = endurance_report(
            self.mm.wear, self.spec, elapsed_seconds=elapsed or None
        )
        return RunResult(
            workload=workload,
            policy=self.policy.name,
            spec=self.spec,
            accounting=accounting,
            wear=self.mm.wear,
            performance=performance,
            power=power,
            nvm_writes=nvm_writes,
            endurance=endurance,
            events=self._event_summary,
        )


def simulate(
    trace: "Trace | TraceSource",
    spec: HybridMemorySpec,
    policy_factory: PolicyFactory,
    validate_every: int = 0,
    inter_request_gap: float = 0.0,
    warmup_fraction: float = 0.0,
    warmup_requests: int | None = None,
    sanitize: bool | None = None,
    batch: bool = True,
    events: EventConfig | EventBus | None = None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`HybridMemorySimulator`."""
    simulator = HybridMemorySimulator(
        spec,
        policy_factory,
        validate_every=validate_every,
        inter_request_gap=inter_request_gap,
        sanitize=sanitize,
        batch=batch,
        events=events,
    )
    return simulator.run(trace, warmup_fraction=warmup_fraction,
                         warmup_requests=warmup_requests)
