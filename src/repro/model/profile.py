"""Workload statistics consumed by the analytic engine.

A :class:`WorkloadProfile` is the one-pass reduction of a rendered
trace that the policy estimators (:mod:`repro.model.estimator`) work
from.  It captures per-access:

* **LRU stack distances** — the classic Mattson reuse distance, so an
  access hits a ``C``-frame LRU memory iff its distance is below
  ``C``.  This makes the single-tier estimates exact and anchors every
  hybrid estimate's total hit/miss split.
* **Write-recency distances** — the page's position in the
  most-recently-*written* ordering, which decides DRAM membership
  under CLOCK-DWF (DRAM holds roughly the ``C_d`` most recently
  written pages).
* **Page identity** (``page_index``) — so the estimators can walk each
  page's access chain (tier-membership propagation for the proposed
  policy) and accumulate per-page reference rates for the Che/Markov
  occupancy model.

Arrays cover the warm-up prefix *and* the measured region — the
estimators need warm-up history because tier membership at the
measurement boundary is set by warm-up fill pressure — while the
request totals and per-page counts describe the measured region only,
exactly the region the simulator scores.

Distances are computed with Fenwick (binary indexed) trees in
``O(n log n)`` — unlike :func:`repro.trace.mrc.stack_distances`'s
``O(n * d)`` list walk.  Long measured regions are truncated at
``sample_cap`` accesses; counts over the per-access arrays then carry
a scale-up ``weight``, while the totals stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.trace import Trace
from repro.workloads.parsec import WorkloadInstance

__all__ = ["WorkloadProfile", "profile_trace", "profile_workload"]

#: Default bound on the measured span of the per-access arrays;
#: longer measured regions are profiled on a prefix and scaled up by
#: ``weight``.
DEFAULT_SAMPLE_CAP = 400_000


def _bit_add(tree: list[int], index: int, delta: int) -> None:
    """Fenwick point update at 1-based ``index``."""
    size = len(tree)
    while index < size:
        tree[index] += delta
        index += index & -index


def _bit_sum(tree: list[int], index: int) -> int:
    """Fenwick prefix sum over 1-based ``1..index``."""
    total = 0
    while index > 0:
        total += tree[index]
        index -= index & -index
    return total


def _distance_arrays(
    pages: list[int], writes: list[bool]
) -> tuple[np.ndarray, np.ndarray]:
    """LRU stack distance and write-recency distance per access.

    ``distances[i]`` is the number of distinct pages accessed since
    access ``i``'s page was last accessed (-1 on first touch): the
    Mattson stack distance.  ``write_distances[i]`` is the number of
    distinct pages *written* since the page was last *written* (-1 if
    never written): the page's 0-based position in the most-recently-
    written ordering.  Both in one ``O(n log n)`` Fenwick pass.
    """
    limit = len(pages)
    distances = np.empty(limit, dtype=np.int64)
    write_distances = np.empty(limit, dtype=np.int64)
    access_tree = [0] * (limit + 1)
    write_tree = [0] * (limit + 1)
    last_access: dict[int, int] = {}
    last_write: dict[int, int] = {}
    for position in range(limit):
        page = pages[position]
        previous = last_access.get(page, -1)
        if previous < 0:
            distances[position] = -1
        else:
            # Distinct pages touched strictly between the accesses:
            # each such page has exactly one live position in the tree.
            distances[position] = (
                _bit_sum(access_tree, position)
                - _bit_sum(access_tree, previous + 1)
            )
            _bit_add(access_tree, previous + 1, -1)
        _bit_add(access_tree, position + 1, 1)
        last_access[page] = position

        written = last_write.get(page, -1)
        if written < 0:
            write_distances[position] = -1
        else:
            write_distances[position] = (
                _bit_sum(write_tree, position)
                - _bit_sum(write_tree, written + 1)
            )
        if writes[position]:
            if written >= 0:
                _bit_add(write_tree, written + 1, -1)
            _bit_add(write_tree, position + 1, 1)
            last_write[page] = position
    return distances, write_distances


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-access and per-page statistics of one rendered workload.

    The per-access arrays (``distances`` / ``write_distances`` /
    ``is_write`` / ``page_index``) span ``[0, boundary + sampled)`` of
    the trace: the warm-up prefix followed by the (possibly truncated)
    measured region.  Counts taken over the measured span scale to the
    full measured region by ``weight``; the request totals and the
    per-page count arrays are exact over the measured span as stored.
    """

    name: str
    requests: int
    read_requests: int
    write_requests: int
    boundary: int
    sampled: int
    weight: float
    distances: np.ndarray = field(repr=False)
    write_distances: np.ndarray = field(repr=False)
    is_write: np.ndarray = field(repr=False)
    page_index: np.ndarray = field(repr=False)
    page_ids: np.ndarray = field(repr=False)
    page_counts: np.ndarray = field(repr=False)
    page_write_counts: np.ndarray = field(repr=False)
    warmup_distinct: int
    footprint: int

    @property
    def measured(self) -> slice:
        """Slice selecting the measured span of the per-access arrays."""
        return slice(self.boundary, self.boundary + self.sampled)

    @property
    def write_ratio(self) -> float:
        return self.write_requests / self.requests if self.requests else 0.0

    def weighted(self, mask: np.ndarray) -> float:
        """Scale a measured-span mask up to measured-region counts."""
        return float(np.count_nonzero(mask)) * self.weight


def profile_trace(
    trace: Trace,
    warmup_fraction: float = 0.0,
    sample_cap: int | None = DEFAULT_SAMPLE_CAP,
    name: str | None = None,
) -> WorkloadProfile:
    """Profile a trace around the simulator's warm-up boundary."""
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    pages = np.asarray(trace.pages)
    writes = np.asarray(trace.is_write)
    total = int(pages.shape[0])
    boundary = int(total * warmup_fraction) if warmup_fraction > 0.0 else 0
    measured = total - boundary
    sampled = measured if sample_cap is None else min(measured, sample_cap)
    limit = boundary + sampled

    distances, write_distances = _distance_arrays(
        pages[:limit].tolist(), writes[:limit].tolist()
    )
    page_ids, inverse = np.unique(pages[:limit], return_inverse=True)
    inverse = inverse.astype(np.int64)
    measured_writes = writes[boundary:]
    span_index = inverse[boundary:limit]
    page_counts = np.bincount(span_index, minlength=page_ids.shape[0])
    page_write_counts = np.bincount(
        span_index,
        weights=writes[boundary:limit].astype(np.float64),
        minlength=page_ids.shape[0],
    ).astype(np.int64)
    warmup_distinct = (
        int(np.unique(pages[:boundary]).shape[0]) if boundary else 0
    )
    return WorkloadProfile(
        name=name or trace.name,
        requests=measured,
        read_requests=int(measured) - int(measured_writes.sum()),
        write_requests=int(measured_writes.sum()),
        boundary=boundary,
        sampled=sampled,
        weight=(measured / sampled) if sampled else 1.0,
        distances=distances,
        write_distances=write_distances,
        is_write=writes[:limit],
        page_index=inverse,
        page_ids=page_ids,
        page_counts=page_counts.astype(np.int64),
        page_write_counts=page_write_counts,
        warmup_distinct=warmup_distinct,
        footprint=int(np.unique(pages).shape[0]) if total else 0,
    )


def profile_workload(
    instance: WorkloadInstance,
    warmup_fraction: float | None = None,
    sample_cap: int | None = DEFAULT_SAMPLE_CAP,
) -> WorkloadProfile:
    """Profile a rendered workload at its own (or an overridden)
    warm-up boundary."""
    warmup = (instance.warmup_fraction if warmup_fraction is None
              else warmup_fraction)
    return profile_trace(
        instance.trace,
        warmup_fraction=warmup,
        sample_cap=sample_cap,
        name=instance.name,
    )
