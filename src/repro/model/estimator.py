"""Closed-form policy estimators: the ``engine="analytic"`` fast path.

Every estimator turns a :class:`~repro.model.profile.WorkloadProfile`
plus a :class:`~repro.memory.specs.HybridMemorySpec` into the same
:class:`~repro.mmu.simulator.RunResult` the simulator produces — an
integer :class:`AccessAccounting` scored through the *identical*
Eq. 1-3 model layer (``compute_performance`` / ``compute_power`` /
``compute_nvm_writes`` / ``endurance_report``) — without replaying a
single request.  Following the authors' analytical model
(arXiv:1903.10067), adapted to this repo's exact Algorithm 1:

``dram-only*`` / ``nvm-only*``
    A single LRU list is exact under Mattson stack analysis: an access
    hits iff its reuse distance is below the frame count.  The CLOCK /
    CLOCK-Pro / CAR variants are approximated by their LRU envelope
    (they are LRU approximations by design; the variant tests pin
    their hit ratios within a few percent of LRU).

``proposed``
    Faults are exact (reuse distance at combined capacity).  The
    DRAM/NVM hit split propagates tier membership along each page's
    access chain: a page enters DRAM on its faults and is demoted to
    NVM once enough DRAM-head events (fault fills plus DRAM hits of
    staler pages) accumulate between two of its accesses — which
    captures the post-warm-up regime where faults stop and membership
    freezes wherever warm-up left it, exactly where a steady-state
    occupancy model goes degenerate.  Promotions come from the
    windowed-counter Markov chain (:mod:`repro.model.markov`): Che
    characteristic times of the NVM queue and the two counter windows
    give the chain's transition probabilities, absorption gives the
    per-residency promotion probability, and the mean hitting time
    bounds the flow over a finite run.

``clock-dwf``
    DRAM holds (approximately) the ``C_d`` most recently *written*
    pages, so DRAM membership is a write-recency stack test; write
    hits are always served in DRAM (an NVM write swaps the page in
    first), read hits serve wherever the page sits, write faults fill
    DRAM and read faults fill NVM.

Estimates land within the bounds asserted in
``tests/test_model_validation.py`` on the Fig. 4 grid at orders of
magnitude more configurations per second than simulation once a
workload's profile is built.
"""

from __future__ import annotations

from dataclasses import fields as _dataclass_fields
from dataclasses import replace as _replace
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.config import MigrationConfig
from repro.memory.accounting import AccessAccounting, WearAccounting
from repro.memory.endurance import compute_nvm_writes, endurance_report
from repro.memory.metrics import compute_performance
from repro.memory.power import compute_power
from repro.memory.specs import HybridMemorySpec
from repro.mmu.simulator import RunResult
from repro.model.markov import (
    characteristic_time,
    promotion_probability,
    promotion_steps,
    survival_probability,
)
from repro.model.profile import WorkloadProfile, profile_workload

if TYPE_CHECKING:
    from repro.experiments.runspec import RunSpec

__all__ = [
    "ANALYTIC_POLICIES",
    "UnsupportedPolicyError",
    "analytic_reference",
    "estimate_run",
    "estimate_spec",
    "supports_policy",
]

#: Policy names (and prefixes, for the single-tier replacement
#: variants) the analytic engine can estimate.
ANALYTIC_POLICIES = ("proposed", "clock-dwf", "dram-only*", "nvm-only*")

_CONFIG_FIELDS = tuple(f.name for f in _dataclass_fields(MigrationConfig))

#: Profiles are expensive relative to estimates, so estimate_spec keeps
#: one per rendered workload.  Worker processes each build their own.
_PROFILES: dict[tuple, WorkloadProfile] = {}  # repro: worker-local


class UnsupportedPolicyError(ValueError):
    """The analytic engine has no closed form for this policy."""


def supports_policy(policy: str) -> bool:
    """Whether the analytic engine can estimate ``policy``."""
    return (
        policy in ("proposed", "clock-dwf")
        or policy.startswith("dram-only")
        or policy.startswith("nvm-only")
    )


# ---------------------------------------------------------------------------
# Integerisation helpers
# ---------------------------------------------------------------------------
def _bounded(estimate: float, upper: int) -> int:
    """Round an expected count into ``[0, upper]``."""
    return min(upper, max(0, round(estimate)))


def _page_histogram(values: np.ndarray, page_ids: np.ndarray) -> dict[int, int]:
    """Per-page expected write counts as the wear histogram."""
    rounded = np.rint(values).astype(np.int64)
    mask = rounded > 0
    # tolist() materialises native ints in C; zipping numpy scalars
    # through int() is several times slower on wide histograms.
    return dict(zip(page_ids[mask].tolist(), rounded[mask].tolist()))


def _eviction_split(
    evictions: int, dirty_fraction: float
) -> tuple[int, int]:
    dirty = _bounded(evictions * dirty_fraction, evictions)
    return evictions - dirty, dirty


# ---------------------------------------------------------------------------
# Tier-membership propagation (proposed policy)
# ---------------------------------------------------------------------------
def _fill_residency(
    page_index: np.ndarray,
    fault: np.ndarray,
    distinct: np.ndarray,
    frames: int,
    dram_hits: np.ndarray | None = None,
) -> np.ndarray:
    """Per-access DRAM residency under fill-into-DRAM dynamics.

    A page enters DRAM on each of its faults.  Between two consecutive
    accesses of the same page it sinks one LRU position per *distinct*
    page that touches the DRAM head (a fault fill or a DRAM hit — an
    LRU position drops once per distinct intervener, however often
    that page is re-hit); once it sinks past the last of ``frames``
    positions it is demoted to NVM and stays there until its next
    fault (promotions are layered on separately).  The gap pressure is
    therefore the DRAM-touch event count capped by the gap's distinct
    page count — which is exactly the access's LRU stack distance
    (``distinct``).

    The DRAM-hit pressure itself depends on residency, so callers run
    two passes: fills-only first, then once more with the first pass's
    residency as the DRAM-hit indicator.
    """
    n = int(fault.shape[0])
    if n == 0 or frames <= 0:
        return np.zeros(n, dtype=bool)
    order = np.argsort(page_index, kind="stable")
    seg = page_index[order]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    starts[1:] = seg[1:] != seg[:-1]
    position = order  # original positions, ascending within a segment

    fill_cumsum = np.cumsum(fault.astype(np.int64))
    fault_sorted = fault[order]
    # Events strictly inside the gap (previous access, this access):
    # inclusive prefix at this access minus its own event, minus the
    # inclusive prefix at the previous access of the same page.
    pressure = np.zeros(n, dtype=np.int64)
    pressure[1:] = (
        fill_cumsum[position[1:]] - fault[position[1:]]
        - fill_cumsum[position[:-1]]
    )
    if dram_hits is not None:
        hit_cumsum = np.cumsum(dram_hits.astype(np.int64))
        gap_hits = np.zeros(n, dtype=np.int64)
        gap_hits[1:] = (
            hit_cumsum[position[1:]] - dram_hits[position[1:]]
            - hit_cumsum[position[:-1]]
        )
        pressure += gap_hits
    demoted = np.minimum(pressure, distinct[position]) >= frames
    demoted[starts] = False  # a first access is a fault, not a gap
    # A gap-demotion superseded by a fault at the same access leaves no
    # net demote event: the fault refills the page into DRAM.
    demoted &= ~fault_sorted

    # Residency at an access = the page's most recent fault is more
    # recent than its most recent demotion.  Segmented "last event
    # position" via offset-shifted running maxima (offsets keep the
    # accumulate from leaking across page segments).
    rank = np.arange(n, dtype=np.int64)
    offset = (np.cumsum(starts) - 1) * np.int64(n + 1)
    last_fault = np.maximum.accumulate(
        offset + np.where(fault_sorted, rank + 1, 0)
    )
    last_demote = np.maximum.accumulate(
        offset + np.where(demoted, rank + 1, 0)
    )
    # Exclusive of the current access: shift one step inside segments.
    prior_fault = np.empty(n, dtype=np.int64)
    prior_fault[1:] = last_fault[:-1]
    prior_demote = np.empty(n, dtype=np.int64)
    prior_demote[1:] = last_demote[:-1]
    prior_fault[starts] = offset[starts]
    prior_demote[starts] = offset[starts]

    resident_sorted = ~fault_sorted & ~demoted & (prior_fault > prior_demote)
    resident = np.empty(n, dtype=bool)
    resident[order] = resident_sorted
    return resident


# ---------------------------------------------------------------------------
# Per-policy estimators (AccessAccounting + WearAccounting)
# ---------------------------------------------------------------------------
def _single_tier(
    profile: WorkloadProfile, spec: HybridMemorySpec, nvm: bool
) -> tuple[AccessAccounting, WearAccounting]:
    capacity = spec.nvm_pages if nvm else spec.dram_pages
    reads_total = profile.read_requests
    writes_total = profile.write_requests
    span = profile.measured
    distance = profile.distances[span]
    is_write = profile.is_write[span]
    hit = (distance >= 0) & (distance < capacity)
    read_faults = _bounded(
        profile.weighted(~hit & ~is_write), reads_total
    )
    write_faults = _bounded(
        profile.weighted(~hit & is_write), writes_total
    )
    read_hits = reads_total - read_faults
    write_hits = writes_total - write_faults
    faults = read_faults + write_faults
    free = max(0, capacity - min(profile.warmup_distinct, capacity))
    evictions = max(0, faults - free)
    written_pages = profile.page_write_counts > 0
    dirty_fraction = (
        float(np.count_nonzero(written_pages)) / profile.page_ids.size
        if profile.page_ids.size else 0.0
    )
    clean, dirty = _eviction_split(evictions, dirty_fraction)
    accounting = AccessAccounting(
        read_requests=reads_total,
        write_requests=writes_total,
        dram_read_hits=0 if nvm else read_hits,
        dram_write_hits=0 if nvm else write_hits,
        nvm_read_hits=read_hits if nvm else 0,
        nvm_write_hits=write_hits if nvm else 0,
        read_faults=read_faults,
        write_faults=write_faults,
        faults_filled_dram=0 if nvm else faults,
        faults_filled_nvm=faults if nvm else 0,
        clean_evictions=clean,
        dirty_evictions=dirty,
    )
    wear = WearAccounting(page_factor=spec.page_factor)
    if nvm:
        wear.request_writes = write_hits
        wear.fault_fill_writes = faults * spec.page_factor
        index = profile.page_index[span]
        npages = profile.page_ids.size
        hit_writes = np.bincount(
            index[hit & is_write], minlength=npages
        ) * profile.weight
        fills = np.bincount(index[~hit], minlength=npages) * profile.weight
        wear.page_writes = _page_histogram(
            hit_writes + fills * spec.page_factor, profile.page_ids
        )
    return accounting, wear


#: Config-independent stage of the proposed-policy estimate, cached
#: per (profile identity, memory geometry): membership propagation and
#: the per-page reductions cost ``O(n)`` over the access arrays, while
#: the config-dependent Markov stage is ``O(pages)`` — caching this
#: stage is what makes parameter sweeps orders of magnitude faster
#: than simulation.  Entries hold the profile, so ``id()`` keys stay
#: valid.  Worker processes each build their own.
_MEMBERSHIP: dict[tuple, tuple] = {}  # repro: worker-local
_MEMBERSHIP_LIMIT = 16


def _proposed_membership(
    profile: WorkloadProfile, dram_frames: int, nvm_frames: int
) -> dict:
    key = (id(profile), dram_frames, nvm_frames)
    cached = _MEMBERSHIP.get(key)
    if cached is not None and cached[0] is profile:
        return cached[1]
    total_frames = dram_frames + nvm_frames
    npages = profile.page_ids.size
    span = profile.measured
    index = profile.page_index
    span_index = index[span]
    is_write = profile.is_write[span]

    # Faults are exact: an access misses the combined memory iff more
    # than ``total_frames`` distinct pages intervened since its last
    # use.  Membership propagation covers warm-up too — residency at
    # the measurement boundary is set by warm-up fill pressure.
    fault_full = (profile.distances < 0) | (
        profile.distances >= total_frames
    )
    warm = _fill_residency(index, fault_full, profile.distances,
                           dram_frames)
    in_dram = _fill_residency(index, fault_full, profile.distances,
                              dram_frames, dram_hits=warm)

    fault = fault_full[span]
    dram_hit = in_dram[span]
    nvm_hit = ~fault & ~dram_hit

    def _count(mask: np.ndarray) -> np.ndarray:
        return np.bincount(
            span_index[mask], minlength=npages
        ) * profile.weight

    nvm_reads = _count(nvm_hit & ~is_write)
    nvm_writes = _count(nvm_hit & is_write)
    nvm_hits = nvm_reads + nvm_writes

    # Promotion statistics run over the *full* prefix (warm-up
    # included): a hot page demoted by the cold-fill scan promotes
    # back during warm-up and serves its whole measured region from
    # DRAM — the accounting never sees that promotion, only its
    # effect.  NVM-queue touch rates (hits plus fill/demotion
    # arrivals) set the Che characteristic times of the queue and of
    # both counter windows; survival across those times gives the
    # chain's transitions.
    prefix_n = int(fault_full.shape[0])
    nvm_full = ~fault_full & ~in_dram
    nvm_prefix = np.bincount(index[nvm_full], minlength=npages).astype(
        np.float64
    )
    fault_prefix = np.bincount(index[fault_full], minlength=npages)
    rates = (nvm_prefix + fault_prefix) / max(prefix_n, 1)
    nvm_full_reads = np.bincount(
        index[nvm_full & ~profile.is_write], minlength=npages
    ).astype(np.float64)
    data = {
        "read_faults": _bounded(
            profile.weighted(fault & ~is_write), profile.read_requests
        ),
        "write_faults": _bounded(
            profile.weighted(fault & is_write), profile.write_requests
        ),
        "fault_flow": _count(fault),
        "nvm_reads": nvm_reads,
        "nvm_writes": nvm_writes,
        "nvm_hits": nvm_hits,
        "nvm_warm": np.maximum(
            nvm_prefix - nvm_hits / profile.weight, 0.0
        ),
        "rates": rates,
        "in_queue": survival_probability(
            rates, characteristic_time(rates, nvm_frames)
        ),
        "read_fraction": np.where(
            nvm_prefix > 0,
            nvm_full_reads / np.maximum(nvm_prefix, 1e-12),
            0.0,
        ),
        "window_survival": {},  # per window-pages Che solve, on demand
    }
    if len(_MEMBERSHIP) >= _MEMBERSHIP_LIMIT:
        _MEMBERSHIP.clear()
    _MEMBERSHIP[key] = (profile, data)
    return data


def _proposed(
    profile: WorkloadProfile,
    spec: HybridMemorySpec,
    config: MigrationConfig,
) -> tuple[AccessAccounting, WearAccounting]:
    reads_total = profile.read_requests
    writes_total = profile.write_requests
    requests = profile.requests
    dram_frames = spec.dram_pages
    nvm_frames = spec.nvm_pages
    total_frames = dram_frames + nvm_frames
    read_window = config.read_window_pages(nvm_frames)
    write_window = config.write_window_pages(nvm_frames)

    npages = profile.page_ids.size
    stage = _proposed_membership(profile, dram_frames, nvm_frames)
    read_faults = stage["read_faults"]
    write_faults = stage["write_faults"]
    faults = read_faults + write_faults
    fault_flow = stage["fault_flow"]
    nvm_reads = stage["nvm_reads"]
    nvm_writes = stage["nvm_writes"]
    nvm_hits = stage["nvm_hits"]
    nvm_warm = stage["nvm_warm"]
    rates = stage["rates"]
    in_queue = stage["in_queue"]
    read_fraction = stage["read_fraction"]

    # --- Promotion flow: the windowed-counter Markov chain ------------
    def _window_survival(window: int) -> np.ndarray:
        cached = stage["window_survival"].get(window)
        if cached is None:
            cached = survival_probability(
                rates, characteristic_time(rates, window)
            )
            stage["window_survival"][window] = cached
        return cached

    in_read_window = _window_survival(read_window)
    in_write_window = _window_survival(write_window)
    survive_read = promotion_probability(
        in_read_window, in_queue, read_fraction, config.read_threshold
    )
    survive_write = promotion_probability(
        in_write_window, in_queue, 1.0 - read_fraction,
        config.write_threshold,
    )
    promoted = 1.0 - (1.0 - survive_read) * (1.0 - survive_write)
    # Absorption is infinite-horizon (it saturates at one when the NVM
    # queue never evicts), so the per-NVM-access promotion hazard is
    # the absorption probability times the renewal rate (one over the
    # mean accesses-to-promote).
    renewal = np.clip(
        1.0 / promotion_steps(
            in_read_window, in_queue, read_fraction, config.read_threshold
        )
        + 1.0 / promotion_steps(
            in_write_window, in_queue, 1.0 - read_fraction,
            config.write_threshold,
        ),
        0.0, 1.0,
    )
    hazard = np.clip(promoted * renewal, 0.0, 1.0)

    # Measured-region effect of promotions, iterated to consistency:
    # a page promoted by the measurement boundary (probability
    # ``1 - (1-hazard)^warmup_nvm_accesses``) serves its measured NVM
    # accesses from DRAM; one promoted mid-measurement converts its
    # remaining accesses; and each promotion holds only as long as
    # fill/swap pressure lets the page keep its DRAM frame.
    measured_nvm = nvm_hits  # weighted measured NVM accesses per page
    lam = profile.page_counts * profile.weight / max(requests, 1)
    with np.errstate(divide="ignore"):
        log_miss = np.log1p(-np.minimum(hazard, 1.0 - 1e-15))
    promoted_by_boundary = -np.expm1(nvm_warm * log_miss)
    raw_measured = measured_nvm / profile.weight
    # E[accesses before promotion] truncated at the measured count.
    expect_wait = np.where(
        hazard > 0.0,
        -np.expm1(raw_measured * log_miss) / np.maximum(hazard, 1e-300),
        raw_measured,
    )
    frozen_converted = (
        promoted_by_boundary * raw_measured
        + (1.0 - promoted_by_boundary)
        * np.maximum(raw_measured - expect_wait, 0.0)
    ) * profile.weight
    converted = np.zeros(npages)
    promotions_measured = np.zeros(npages)
    previous_total = -1.0
    for _ in range(5):
        promotions_expected = float(np.sum(promotions_measured))
        if abs(promotions_expected - previous_total) < 0.25:
            break
        previous_total = promotions_expected
        pressure = (faults + promotions_expected) / max(requests, 1)
        if pressure > 0.0:
            keep = survival_probability(lam, dram_frames / pressure)
        else:
            keep = (lam > 0).astype(np.float64)
        streak = keep / np.maximum(1.0 - keep, 1e-12)
        events = (
            promoted_by_boundary + promotions_measured
            + (1.0 - promoted_by_boundary)
            * -np.expm1(raw_measured * log_miss)
        )
        converted = np.minimum(
            frozen_converted, events * streak * profile.weight
        )
        converted = np.minimum(converted, measured_nvm)
        promotions_measured = hazard * (measured_nvm - converted)
    promotions_expected = float(np.sum(promotions_measured))
    moved_reads = converted * read_fraction
    moved_writes = converted * (1.0 - read_fraction)

    # Integerise: faults are stack-exact per direction; membership plus
    # the promotion adjustment split the hits; complements absorb
    # rounding so validate() holds.
    nvm_read_hits = _bounded(
        float(np.sum(nvm_reads - moved_reads)), reads_total - read_faults
    )
    nvm_write_hits = _bounded(
        float(np.sum(nvm_writes - moved_writes)),
        writes_total - write_faults,
    )
    dram_read_hits = reads_total - read_faults - nvm_read_hits
    dram_write_hits = writes_total - write_faults - nvm_write_hits
    promotions = _bounded(promotions_expected, requests)

    free_dram = max(0, dram_frames - min(profile.warmup_distinct, dram_frames))
    free_total = max(
        0, total_frames - min(profile.warmup_distinct, total_frames)
    )
    demotions = max(0, faults + promotions - free_dram)
    evictions = max(0, faults - free_total)
    flow_total = float(np.sum(fault_flow))
    dirty_fraction = (
        float(np.sum(fault_flow * (profile.page_write_counts > 0)))
        / flow_total if flow_total > 0.0 else 0.0
    )
    clean, dirty = _eviction_split(evictions, dirty_fraction)

    accounting = AccessAccounting(
        read_requests=reads_total,
        write_requests=writes_total,
        dram_read_hits=dram_read_hits,
        dram_write_hits=dram_write_hits,
        nvm_read_hits=nvm_read_hits,
        nvm_write_hits=nvm_write_hits,
        read_faults=read_faults,
        write_faults=write_faults,
        faults_filled_dram=faults,
        migrations_to_dram=promotions,
        migrations_to_nvm=demotions,
        clean_evictions=clean,
        dirty_evictions=dirty,
    )
    wear = WearAccounting(page_factor=spec.page_factor)
    wear.request_writes = nvm_write_hits
    wear.migration_writes = demotions * spec.page_factor
    demote_per_page = fault_flow + promotions_measured
    wear.page_writes = _page_histogram(
        np.maximum(nvm_writes - moved_writes, 0.0)
        + demote_per_page * spec.page_factor,
        profile.page_ids,
    )
    return accounting, wear


def _clock_dwf(
    profile: WorkloadProfile, spec: HybridMemorySpec
) -> tuple[AccessAccounting, WearAccounting]:
    reads_total = profile.read_requests
    writes_total = profile.write_requests
    dram_frames = spec.dram_pages
    total_frames = spec.total_pages
    span = profile.measured
    distance = profile.distances[span]
    write_distance = profile.write_distances[span]
    is_write = profile.is_write[span]

    hit = (distance >= 0) & (distance < total_frames)
    # DRAM holds the most recently written pages: membership is a
    # write-recency stack test (never-written pages live in NVM).
    in_dram = (write_distance >= 0) & (write_distance < dram_frames)

    read_faults = _bounded(profile.weighted(~hit & ~is_write), reads_total)
    write_faults = _bounded(profile.weighted(~hit & is_write), writes_total)
    # Write hits always end up served in DRAM (an NVM write swaps the
    # page in first), so NVM write hits are structurally zero.
    dram_write_hits = writes_total - write_faults
    nvm_read_hits = _bounded(
        profile.weighted(hit & ~is_write & ~in_dram),
        reads_total - read_faults,
    )
    dram_read_hits = reads_total - read_faults - nvm_read_hits

    swaps = _bounded(
        profile.weighted(hit & is_write & ~in_dram), dram_write_hits
    )
    free_dram = max(0, dram_frames - min(profile.warmup_distinct, dram_frames))
    demotions = swaps + max(0, write_faults - free_dram)
    free_total = max(
        0, total_frames - min(profile.warmup_distinct, total_frames)
    )
    faults = read_faults + write_faults
    evictions = max(0, faults - free_total)
    written_pages = profile.page_write_counts > 0
    dirty_fraction = (
        float(np.count_nonzero(written_pages)) / profile.page_ids.size
        if profile.page_ids.size else 0.0
    )
    clean, dirty = _eviction_split(evictions, dirty_fraction)

    accounting = AccessAccounting(
        read_requests=reads_total,
        write_requests=writes_total,
        dram_read_hits=dram_read_hits,
        dram_write_hits=dram_write_hits,
        nvm_read_hits=nvm_read_hits,
        read_faults=read_faults,
        write_faults=write_faults,
        faults_filled_dram=write_faults,
        faults_filled_nvm=read_faults,
        migrations_to_dram=swaps,
        migrations_to_nvm=demotions,
        clean_evictions=clean,
        dirty_evictions=dirty,
    )
    wear = WearAccounting(page_factor=spec.page_factor)
    wear.fault_fill_writes = read_faults * spec.page_factor
    wear.migration_writes = demotions * spec.page_factor
    index = profile.page_index[span]
    npages = profile.page_ids.size
    read_fills = np.bincount(
        index[~hit & ~is_write], minlength=npages
    ) * profile.weight
    total_writes = float(profile.page_write_counts.sum())
    demote_share = (
        profile.page_write_counts / total_writes if total_writes else
        np.zeros(npages)
    )
    wear.page_writes = _page_histogram(
        (read_fills + demotions * demote_share) * spec.page_factor,
        profile.page_ids,
    )
    return accounting, wear


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def estimate_run(
    profile: WorkloadProfile,
    spec: HybridMemorySpec,
    policy: str = "proposed",
    overrides: Mapping[str, object] | None = None,
    inter_request_gap: float = 0.0,
    workload: str | None = None,
) -> RunResult:
    """Estimate one run analytically; same RunResult shape as a
    simulation, scored through the identical Eq. 1-3 model layer."""
    if not supports_policy(policy):
        supported = ", ".join(ANALYTIC_POLICIES)
        raise UnsupportedPolicyError(
            f"the analytic engine cannot estimate policy {policy!r} "
            f"(supported: {supported}); use engine=\"simulate\""
        )
    if overrides and policy != "proposed":
        raise UnsupportedPolicyError(
            f"the analytic engine takes no overrides for {policy!r} "
            "(only \"proposed\" accepts MigrationConfig fields)"
        )
    if policy == "proposed":
        config_overrides = dict(overrides or {})
        unknown = sorted(set(config_overrides) - set(_CONFIG_FIELDS))
        if unknown:
            known = ", ".join(_CONFIG_FIELDS)
            raise UnsupportedPolicyError(
                f"analytic \"proposed\" overrides must be MigrationConfig "
                f"fields ({known}); got {unknown}"
            )
        accounting, wear = _proposed(
            profile, spec, MigrationConfig(**config_overrides)  # type: ignore[arg-type]
        )
    elif policy == "clock-dwf":
        accounting, wear = _clock_dwf(profile, spec)
    else:
        accounting, wear = _single_tier(
            profile, spec, nvm=policy.startswith("nvm-only")
        )
    accounting.validate()
    performance = compute_performance(accounting, spec)
    power = compute_power(
        accounting, spec, performance, inter_request_gap=inter_request_gap
    )
    nvm_writes = compute_nvm_writes(accounting, spec)
    elapsed = (
        (performance.memory_time + inter_request_gap)
        * accounting.total_requests
    )
    endurance = endurance_report(wear, spec, elapsed_seconds=elapsed or None)
    return RunResult(
        workload=workload or profile.name,
        policy=policy,
        spec=spec,
        accounting=accounting,
        wear=wear,
        performance=performance,
        power=power,
        nvm_writes=nvm_writes,
        endurance=endurance,
    )


def estimate_spec(spec: "RunSpec", instance=None) -> RunResult:
    """Analytic counterpart of ``RunSpec.execute()``: render (or reuse)
    the workload profile, apply the machine transform, estimate."""
    if instance is None:
        instance = spec.render()
    warmup = (
        instance.warmup_fraction if spec.warmup_fraction is None
        else spec.warmup_fraction
    )
    cache_key = (
        # External sources key by content digest (names can collide).
        spec.source.digest if spec.source is not None else spec.workload,
        spec.request_scale, spec.footprint_scale,
        spec.seed, warmup,
    )
    profile = _PROFILES.get(cache_key)
    if profile is None:
        profile = profile_workload(instance, warmup_fraction=warmup)
        _PROFILES[cache_key] = profile
    return estimate_run(
        profile,
        spec.machine_spec(instance),
        policy=spec.policy,
        overrides=dict(spec.policy_overrides) or None,
        inter_request_gap=instance.inter_request_gap,
        workload=spec.workload,
    )


def analytic_reference(spec: "RunSpec") -> "RunSpec":
    """The analytic twin of ``spec``: same workload/policy/machine,
    ``engine="analytic"``.

    Cross-engine comparisons (accuracy benchmarks, sampled-engine
    error triangulation) want the closed-form estimate for exactly the
    cell a simulated or sampled spec describes.  Engine-specific
    fields that the analytic engine rejects (``events``, ``sampling``)
    are dropped in the same stroke.

    Raises :class:`UnsupportedPolicyError` when the spec's policy has
    no closed form (``ANALYTIC_POLICIES``).
    """
    if not supports_policy(spec.policy):
        raise UnsupportedPolicyError(
            f"no analytic reference for policy {spec.policy!r}; "
            f"supported: {', '.join(ANALYTIC_POLICIES)}"
        )
    return _replace(spec, engine="analytic", events=None, sampling=None)
