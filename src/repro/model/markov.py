"""Markov-chain machinery for the analytic engine.

Two vectorised solvers shared by the policy estimators
(:mod:`repro.model.estimator`):

* **Che's characteristic time** (:func:`characteristic_time`) — for an
  LRU list fed by independent per-page reference rates, the time ``T``
  a page survives without being touched is approximately constant
  across pages, fixed by the capacity constraint
  ``sum_i (1 - exp(-rate_i * T)) = C``.  A page referenced at rate
  ``r`` then survives between consecutive accesses with probability
  ``1 - exp(-r * T)`` (:func:`survival_probability`) — the transition
  probabilities of every queue-position chain in the model.

* **The promotion counter chain** (:func:`promotion_probability`) —
  the proposed scheme's windowed counter is an absorbing Markov chain
  over counter values ``k = 0..threshold``: each successive access to
  an NVM-resident page either ticks the counter (same-direction hit
  inside the window), leaves it (other-direction hit inside the
  window), restarts it (hit outside the window), or kills the
  residency (the page ages out of NVM).  The absorption probability
  into "promoted" — reached when a tick pushes the counter past the
  threshold — has a closed back-substitution form, solved here for
  every page at once.

Both follow the authors' analytical model (Salkhordeh, Mutlu, Asadi —
arXiv:1903.10067), re-derived for this repo's exact Algorithm 1
semantics (counters restart at 1 on an out-of-window hit; promotion
fires strictly above the threshold).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "characteristic_time",
    "survival_probability",
    "promotion_probability",
    "promotion_steps",
]

#: Denominator guard for the chain solves (probabilities of exactly 1).
_EPS = 1e-12


def _geometric_sum(ratio: np.ndarray, n: int) -> np.ndarray:
    """``sum_{j=0}^{n} ratio**j`` elementwise, ``n >= 0``, ratio in
    [0, 1] (the chains' tick-to-denominator ratio never exceeds 1)."""
    near_one = np.abs(1.0 - ratio) < 1e-9
    safe = np.where(near_one, 0.5, ratio)
    total = (1.0 - np.power(safe, n + 1)) / (1.0 - safe)
    return np.where(near_one, float(n + 1), total)


def occupancy(rates: np.ndarray, time: float) -> float:
    """Expected pages resident after ``time`` request-slots: Che's LHS."""
    if time == np.inf:
        return float(np.count_nonzero(rates > 0))
    return float(np.sum(-np.expm1(-rates * time)))


def characteristic_time(
    rates: np.ndarray,
    capacity: float,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> float:
    """Che's characteristic time of an LRU list of ``capacity`` frames.

    ``rates`` are per-page reference rates in accesses per request
    slot; the returned ``T`` is in request slots.  Returns ``0`` for an
    empty list and ``inf`` when every referenced page fits (the list
    never evicts, so survival is certain).
    """
    rates = np.asarray(rates, dtype=np.float64)
    positive = rates[rates > 0]
    if capacity <= 0 or positive.size == 0:
        return 0.0
    if positive.size <= capacity:
        return np.inf
    # Bracket: occupancy is continuous and strictly increasing in T,
    # from 0 toward the number of referenced pages (> capacity here).
    low, high = 0.0, 1.0 / float(np.max(positive))
    while occupancy(positive, high) < capacity:
        high *= 2.0
        if high > 1e18:  # numerically flat tail; treat as no eviction
            return np.inf
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        if occupancy(positive, mid) < capacity:
            low = mid
        else:
            high = mid
        if high - low <= tolerance * max(high, 1.0):
            break
    return 0.5 * (low + high)


def survival_probability(rates: np.ndarray, time: float) -> np.ndarray:
    """P(page is re-accessed within ``time``) per page — the chance a
    resident page survives in a list whose characteristic time is
    ``time`` (``1 - exp(-rate * time)``, elementwise)."""
    rates = np.asarray(rates, dtype=np.float64)
    if time <= 0.0:
        return np.zeros_like(rates)
    if time == np.inf:
        return (rates > 0).astype(np.float64)
    return -np.expm1(-rates * time)


def promotion_probability(
    in_window: np.ndarray,
    in_queue: np.ndarray,
    direction_fraction: np.ndarray,
    threshold: int,
) -> np.ndarray:
    """Per-residency probability that one counter earns a promotion.

    Parameters
    ----------
    in_window:
        Per-page probability the next access arrives while the page
        still sits inside this counter's position window (``B``).
    in_queue:
        Per-page probability the next access arrives while the page is
        still NVM-resident at all (``A >= B``).
    direction_fraction:
        Per-page share of the page's accesses in this counter's
        direction (read fraction for the read counter, write fraction
        for the write counter).
    threshold:
        The promotion threshold; the counter must *exceed* it.

    Transitions per access to the resident page, from counter ``k``:

    ===========================  ===========  =======================
    event                        probability  next state
    ===========================  ===========  =======================
    same direction, in window    ``B * f``    ``k + 1`` (promote when
                                              ``k == threshold``)
    other direction, in window   ``B (1-f)``  ``k``
    same direction, out of       ``(A-B) f``  ``1`` (counter restarts;
    window                                    promotes iff threshold=0)
    other direction, out of      ``(A-B)``    ``0``
    window                       ``* (1-f)``
    page aged out of NVM         ``1 - A``    fail (residency over)
    ===========================  ===========  =======================

    Solved by back-substitution with ``S_k = a_k + b_k S_0 + g_k S_1``,
    vectorised over pages; returns ``S_0`` (a residency starts with a
    zeroed counter).
    """
    in_window = np.asarray(in_window, dtype=np.float64)
    in_queue = np.asarray(in_queue, dtype=np.float64)
    fraction = np.asarray(direction_fraction, dtype=np.float64)
    tick = in_window * fraction
    stay = in_window * (1.0 - fraction)
    outside = np.clip(in_queue - in_window, 0.0, 1.0)
    restart = outside * fraction
    clear = outside * (1.0 - fraction)
    if threshold == 0:
        # Any same-direction hit promotes (the counter becomes 1 > 0):
        # a geometric race between "same-direction hit" and "aged out".
        win = tick + restart
        lose = 1.0 - in_queue
        return np.where(win + lose > 0.0, win / np.maximum(win + lose, _EPS),
                        0.0)
    # S_k = tick*S_{k+1} + stay*S_k + restart*S_1 + clear*S_0, and the
    # k = threshold row absorbs with probability ``tick``.  The
    # back-substitution recurrences are affine with constant
    # coefficients (``x <- r*x + c`` with ``r = tick/denominator``),
    # so the sweep collapses to geometric-series closed forms: S_1's
    # coefficients at depth threshold-1, S_0's one step further.
    denominator = np.maximum(1.0 - stay, _EPS)
    ratio = tick / denominator
    alpha1 = np.power(ratio, threshold)
    geo1 = _geometric_sum(ratio, threshold - 1)
    beta1 = clear / denominator * geo1
    gamma1 = restart / denominator * geo1
    alpha = ratio * alpha1
    geo0 = geo1 * ratio + 1.0
    beta = clear / denominator * geo0
    gamma = restart / denominator * geo0
    # S_1 = alpha1 + beta1 S_0 + gamma1 S_1  =>  S_1 = (alpha1 + beta1
    # S_0) / (1 - gamma1); substitute into S_0's row and solve.
    s1_denominator = np.maximum(1.0 - gamma1, _EPS)
    s0_denominator = np.maximum(
        1.0 - beta - gamma * beta1 / s1_denominator, _EPS
    )
    s0 = (alpha + gamma * alpha1 / s1_denominator) / s0_denominator
    return np.clip(s0, 0.0, 1.0)


#: Hitting times beyond this are "never within any finite run".
_MAX_STEPS = 1e15


def promotion_steps(
    in_window: np.ndarray,
    in_queue: np.ndarray,
    direction_fraction: np.ndarray,
    threshold: int,
) -> np.ndarray:
    """Expected accesses until one counter promotes, ignoring aging.

    The no-fail companion of :func:`promotion_probability`: the mean
    hitting time of the absorbing state from a zeroed counter, with the
    ``1 - A`` residency-death branch removed (its effect on *whether*
    promotion happens at all is ``promotion_probability``'s job).  The
    estimator uses it as a renewal rate — a page with ``n`` NVM
    accesses in the run cannot promote more than about ``n / steps``
    times, which is what bounds promotions in a finite run when the
    infinite-horizon absorption probability saturates at one (memory
    large enough that residencies never die).
    """
    in_window = np.asarray(in_window, dtype=np.float64)
    in_queue = np.asarray(in_queue, dtype=np.float64)
    fraction = np.asarray(direction_fraction, dtype=np.float64)
    tick = in_window * fraction
    restart = np.clip(in_queue - in_window, 0.0, 1.0) * fraction
    clear = np.clip(in_queue - in_window, 0.0, 1.0) * (1.0 - fraction)
    stay = in_window * (1.0 - fraction)
    if threshold == 0:
        rate = tick + restart  # any same-direction access promotes
        return np.minimum(1.0 / np.maximum(rate, 1.0 / _MAX_STEPS),
                          _MAX_STEPS)
    # m_k = 1 + stay m_k + tick m_{k+1} + restart m_1 + clear m_0 with
    # m_{threshold+1} = 0: the same affine back-substitution as the
    # absorption probability with a "+1 per access" source term, so
    # the same geometric-series closed forms apply (source 1 in place
    # of ``clear``/``restart`` for the alpha coefficient).
    denominator = np.maximum(1.0 - stay, _EPS)
    ratio = tick / denominator
    geo1 = _geometric_sum(ratio, threshold - 1)
    geo0 = geo1 * ratio + 1.0
    alpha1 = geo1 / denominator
    beta1 = clear / denominator * geo1
    gamma1 = restart / denominator * geo1
    alpha = geo0 / denominator
    beta = clear / denominator * geo0
    gamma = restart / denominator * geo0
    m1_denominator = np.maximum(1.0 - gamma1, _EPS)
    m0_denominator = np.maximum(
        1.0 - beta - gamma * beta1 / m1_denominator, _EPS
    )
    m0 = (alpha + gamma * alpha1 / m1_denominator) / m0_denominator
    return np.clip(m0, 1.0, _MAX_STEPS)
