"""Analytic engine: Markov-chain run estimation without simulation.

The fast tier behind ``RunSpec(engine="analytic")`` — closed-form
AMAT / APPR / NVM-write / lifetime estimates for the proposed policy
and the single-tier baselines, following the authors' analytical model
(Salkhordeh, Mutlu, Asadi — arXiv:1903.10067).  The simulator stays
the exact oracle; this package answers parameter sweeps at thousands
of configurations per second from one workload profile.
"""

from repro.model.estimator import (
    ANALYTIC_POLICIES,
    UnsupportedPolicyError,
    analytic_reference,
    estimate_run,
    estimate_spec,
    supports_policy,
)
from repro.model.markov import (
    characteristic_time,
    promotion_probability,
    survival_probability,
)
from repro.model.profile import WorkloadProfile, profile_trace, profile_workload

__all__ = [
    "ANALYTIC_POLICIES",
    "UnsupportedPolicyError",
    "WorkloadProfile",
    "analytic_reference",
    "characteristic_time",
    "estimate_run",
    "estimate_spec",
    "profile_trace",
    "profile_workload",
    "promotion_probability",
    "supports_policy",
    "survival_probability",
]
