"""repro — reproduction of "An Operating System Level Data Migration
Scheme in Hybrid DRAM-NVM Memory Architecture" (Salkhordeh & Asadi,
DATE 2016).

The package is organised bottom-up:

* :mod:`repro.trace` — memory/CPU access records, trace containers, IO
  and workload characterisation (Table III statistics).
* :mod:`repro.workloads` — synthetic access-pattern framework and the
  twelve PARSEC-profile generators.
* :mod:`repro.cpu` — the COTSon-substitute multi-core cache hierarchy
  that filters CPU traces into main-memory traces (Table II).
* :mod:`repro.memory` — device models (Table IV), event accounting and
  the paper's AMAT/APPR/endurance models (Eq. 1-3).
* :mod:`repro.mmu` — the Linux-like memory-management layer: page
  table, frame allocation, DMA, and the trace-driven simulator.
* :mod:`repro.core` — the paper's contribution: the two-LRU migration
  scheme with windowed hot-page counters (Algorithm 1), plus the
  adaptive-threshold extension.
* :mod:`repro.policies` — rivals and baselines: CLOCK-DWF, CLOCK-Pro,
  CAR, CLOCK, LRU, DRAM-only, NVM-only, and ablation variants.
* :mod:`repro.experiments` — the evaluation harness regenerating every
  table and figure of Section V.

Quick start::

    from repro import simulate, parsec_workload, policy_factory

    workload = parsec_workload("dedup")
    result = simulate(
        workload.trace, workload.spec, policy_factory("proposed"),
        inter_request_gap=workload.inter_request_gap,
        warmup_fraction=workload.warmup_fraction,
    )
    print(result.summary())
"""

from repro.core import AdaptiveMigrationPolicy, MigrationConfig, MigrationLRUPolicy
from repro.memory import (
    HybridMemorySpec,
    MemoryDeviceSpec,
    compute_nvm_writes,
    compute_performance,
    compute_power,
    dram_spec,
    hdd_spec,
    pcm_spec,
)
from repro.mmu import HybridMemorySimulator, MemoryManager, RunResult, simulate
from repro.policies import (
    ClockDWFPolicy,
    available_policies,
    make_policy,
    policy_factory,
)
from repro.trace import Trace, characterize
from repro.workloads import parsec_workload

__version__ = "1.0.0"

__all__ = [
    "AdaptiveMigrationPolicy",
    "ClockDWFPolicy",
    "HybridMemorySimulator",
    "HybridMemorySpec",
    "MemoryDeviceSpec",
    "MemoryManager",
    "MigrationConfig",
    "MigrationLRUPolicy",
    "RunResult",
    "Trace",
    "__version__",
    "available_policies",
    "characterize",
    "compute_nvm_writes",
    "compute_performance",
    "compute_power",
    "dram_spec",
    "hdd_spec",
    "make_policy",
    "parsec_workload",
    "pcm_spec",
    "policy_factory",
    "simulate",
]
