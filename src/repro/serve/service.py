"""The transport-free core of ``repro serve``.

A :class:`ReproService` is a resident façade over the experiment
stack: one shared :class:`~repro.experiments.executor.ParallelExecutor`
(and therefore one warm result cache and one set of per-worker
rendered-workload caches), one content-addressed
:class:`~repro.trace.TraceStore` for uploaded traces, and a tolerant
payload-to-:class:`~repro.experiments.runspec.RunSpec` translation so
HTTP clients can submit partial dicts instead of the full frozen
dataclass form.

Everything here is transport-agnostic — the HTTP layer
(:mod:`repro.serve.server`) and the tests drive the same methods.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.experiments.executor import (
    DEFAULT_CACHE_DIR,
    ParallelExecutor,
    ResultCache,
)
from repro.experiments.runspec import ENGINES, RunSpec
from repro.mmu.simulator import RunResult
from repro.obs.config import EventConfig
from repro.policies.registry import available_policies
from repro.trace.source import IterableTraceSource, SourceSpec, TraceStore
from repro.trace.source import parse_trace_line
from repro.workloads.parsec import WORKLOAD_NAMES


class ServiceError(ValueError):
    """A malformed or unsatisfiable request (HTTP 400, not a crash)."""


#: RunSpec fields a payload may set directly (everything identity).
_SPEC_FIELDS = frozenset((
    "workload", "policy", "request_scale", "footprint_scale", "seed",
    "policy_overrides", "spec_transform", "warmup_fraction", "events",
    "engine", "sampling", "source",
))


class ReproService:
    """Resident executor + trace store behind ``repro serve``.

    Parameters
    ----------
    jobs:
        Worker processes for the shared executor (``None``: all CPUs).
    cache:
        The persistent :class:`ResultCache`; ``None`` disables
        persistence (every run recomputes).
    trace_root:
        Spill directory for uploaded traces; defaults to
        ``<cache dir>/traces``.
    executor:
        A prebuilt :class:`ParallelExecutor` (the CLI passes the one
        its shared ``--jobs/--cache/--progress`` flags imply);
        overrides ``jobs``/``cache``.
    defaults:
        Server-side spec defaults (e.g. ``{"engine": "analytic"}``
        from ``repro serve --engine analytic``) applied to any payload
        that does not set the key itself.
    events_dir:
        When set (the shared ``--events PATH`` flag), every
        event-bearing result is also persisted there as
        ``{workload}-{policy}-{digest}.jsonl``.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        trace_root: str | Path | None = None,
        executor: ParallelExecutor | None = None,
        defaults: Mapping[str, Any] | None = None,
        events_dir: str | Path | None = None,
    ) -> None:
        if executor is None:
            executor = ParallelExecutor(jobs=jobs, cache=cache)
        if trace_root is None:
            base = (executor.cache.root if executor.cache is not None
                    else Path(DEFAULT_CACHE_DIR))
            trace_root = Path(base) / "traces"
        self.store = TraceStore(trace_root)
        self.executor = executor
        self.defaults = dict(defaults or {})
        unknown = set(self.defaults) - _SPEC_FIELDS
        if unknown:
            raise ValueError(
                f"unknown default spec field(s): {', '.join(sorted(unknown))}")
        self.events_dir = Path(events_dir) if events_dir is not None else None
        #: Sources ingested this process, by digest — lets payloads
        #: reference an uploaded trace as ``{"source": "<digest>"}``.
        self.sources: dict[str, SourceSpec] = {}
        self._lock = threading.Lock()
        # Operational uptime, not simulation state: never feeds a run.
        self._started = time.time()  # noqa: R002
        self._runs = 0
        self._ingests = 0

    # ------------------------------------------------------------------
    # Payload translation
    # ------------------------------------------------------------------
    def spec_from_payload(self, payload: Mapping[str, Any]) -> RunSpec:
        """Build a :class:`RunSpec` from a tolerant request dict.

        Unknown keys are rejected (a typo must not silently run the
        default grid point).  ``source`` may be a full
        :class:`SourceSpec` dict or just the digest string of a trace
        uploaded earlier this process; ``events`` may be ``true`` (a
        plain trace-collecting config), a dict, or absent.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError("run payload must be a JSON object")
        unknown = set(payload) - _SPEC_FIELDS
        if unknown:
            raise ServiceError(
                f"unknown spec field(s): {', '.join(sorted(unknown))}")
        kwargs = dict(payload)
        for key, value in self.defaults.items():
            kwargs.setdefault(key, value)
        engine = kwargs.get("engine", "simulate")
        if engine not in ENGINES:
            raise ServiceError(
                f"unknown engine {engine!r}; known: {', '.join(ENGINES)}")
        source = kwargs.get("source")
        if isinstance(source, str):
            known = self.sources.get(source)
            if known is None:
                raise ServiceError(
                    f"unknown source digest {source!r}; upload the trace "
                    "through POST /traces first")
            kwargs["source"] = known
        events = kwargs.get("events")
        if events is True:
            kwargs["events"] = EventConfig(trace=True)
        if kwargs.get("source") is not None:
            kwargs.setdefault("workload", kwargs["source"].name
                              if isinstance(kwargs["source"], SourceSpec)
                              else kwargs["source"]["name"])
        if "workload" not in kwargs:
            raise ServiceError("spec needs a workload or a source")
        if kwargs.get("source") is None \
                and kwargs["workload"] not in WORKLOAD_NAMES:
            raise ServiceError(
                f"unknown workload {kwargs['workload']!r} (and no source "
                "given); known: " + ", ".join(WORKLOAD_NAMES))
        try:
            return RunSpec(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ServiceError(str(exc)) from exc

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, payload: Mapping[str, Any],
            stream: bool = False) -> tuple[RunSpec, RunResult]:
        """Execute one spec (through the executor, so cache-first).

        ``stream=True`` forces event collection
        (``EventConfig(trace=True)``) so the caller has a JSONL event
        stream to forward — only meaningful for the simulate engine
        (the fast engines carry no event stream, which ``RunSpec``
        itself enforces).
        """
        spec = self.spec_from_payload(payload)
        if stream and spec.events is None:
            if spec.engine != "simulate":
                raise ServiceError(
                    f"engine={spec.engine!r} produces no event stream; "
                    "drop ?stream or use engine=\"simulate\"")
            spec = RunSpec.from_dict(
                {**spec.to_dict(), "events": {"trace": True}})
        results = self.run_specs([spec])
        result = results[0]
        if self.events_dir is not None and result.events is not None:
            self._persist_events(spec, result)
        return spec, result

    def _persist_events(self, spec: RunSpec, result: RunResult) -> None:
        events = result.events
        assert events is not None
        self.events_dir.mkdir(parents=True, exist_ok=True)  # type: ignore[union-attr]
        target = (self.events_dir  # type: ignore[operator]
                  / f"{spec.workload}-{spec.policy}-{spec.digest()}.jsonl")
        target.write_text(
            "".join(f"{line}\n" for line in events.trace_lines),
            encoding="utf-8",
        )

    def run_specs(self, specs: list[RunSpec]) -> list[RunResult]:
        """Batch entry: one executor submit under the service lock.

        The executor's merge bookkeeping is not thread-safe, so
        concurrent HTTP handlers serialise here; the pool still fans
        each batch out over all workers.
        """
        with self._lock:
            self._runs += len(specs)
            return self.executor.submit(specs)

    # ------------------------------------------------------------------
    # Trace ingest
    # ------------------------------------------------------------------
    def ingest(self, lines: Iterable[str], name: str | None = None,
               page_size: int | None = None) -> SourceSpec:
        """Ingest ``.trc``-format lines into the trace store.

        Parses, digests and spills in one streaming pass (peak memory
        is one chunk), registers the resulting :class:`SourceSpec`
        under its content digest, and returns it.  Re-uploading the
        same content converges on the same digest and file.
        """
        def pairs():
            for number, raw in enumerate(lines, start=1):
                parsed = parse_trace_line(raw, number)
                if parsed is not None:
                    yield parsed

        source = IterableTraceSource(
            pairs(), name=name or "upload",
            **({"page_size": page_size} if page_size else {}),
        )
        try:
            spec = self.store.add(source, name=name)
        except ValueError as exc:
            raise ServiceError(str(exc)) from exc
        with self._lock:
            self.sources[spec.digest] = spec
            self._ingests += 1
        return spec

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        with self._lock:
            executor = self.executor.stats.as_dict()
            return {
                "uptime_seconds": round(
                    time.time() - self._started, 3),  # noqa: R002
                "runs": self._runs,
                "ingests": self._ingests,
                "sources": sorted(self.sources),
                "jobs": self.executor.jobs,
                "cache": (
                    str(self.executor.cache.root)
                    if self.executor.cache is not None else None
                ),
                "executor": executor,
            }

    def catalog(self) -> dict[str, list[str]]:
        return {
            "policies": list(available_policies()),
            "workloads": list(WORKLOAD_NAMES),
            "engines": list(ENGINES),
        }
