"""Blocking client for a running ``repro serve`` endpoint.

``http.client`` only — the client exists so tests, the CI smoke job
and scripts can talk to the server without growing a dependency.  One
connection per request (the server is HTTP/1.0 connection-close).
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any, Iterator
from urllib.parse import quote


class ServeError(RuntimeError):
    """Non-2xx response from the server, with its error message."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class ServeClient:
    """Talks to one ``repro serve`` address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8023,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: bytes | None = None) -> tuple[int, bytes]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              payload: Any | None = None) -> Any:
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        status, raw = self._request(method, path, body)
        data = json.loads(raw.decode("utf-8")) if raw else {}
        if status >= 400:
            raise ServeError(status, data.get("error", raw.decode("utf-8")))
        return data

    # ------------------------------------------------------------------
    def healthz(self) -> bool:
        return bool(self._json("GET", "/healthz").get("ok"))

    def stats(self) -> dict[str, Any]:
        return self._json("GET", "/stats")

    def policies(self) -> list[str]:
        return self._json("GET", "/policies")["policies"]

    def workloads(self) -> dict[str, list[str]]:
        return self._json("GET", "/workloads")

    def run(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Submit one spec; returns ``{digest, label, result}``."""
        return self._json("POST", "/run", payload)

    def run_stream(self, payload: dict[str, Any]) -> Iterator[dict[str, Any]]:
        """Submit one spec and yield its JSONL event stream.

        Yields each simulation event as a dict; the last yielded item
        is ``{"final": {digest, label, result}}``.
        """
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("POST", "/run?stream=1",
                         body=json.dumps(payload).encode("utf-8"))
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                data = json.loads(raw.decode("utf-8")) if raw else {}
                raise ServeError(response.status,
                                 data.get("error", raw.decode("utf-8")))
            for raw_line in response:
                line = raw_line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def batch(self, payloads: list[dict[str, Any]]) -> list[dict[str, Any]]:
        return self._json("POST", "/batch", {"specs": payloads})["results"]

    def upload_trace(self, text: str, name: str | None = None) -> dict[str, Any]:
        """Upload ``.trc`` text; returns the stored ``SourceSpec`` dict."""
        path = "/traces"
        if name:
            path += f"?name={quote(name)}"
        status, raw = self._request("POST", path, text.encode("utf-8"))
        data = json.loads(raw.decode("utf-8"))
        if status >= 400:
            raise ServeError(status, data.get("error", ""))
        return data["source"]

    def shutdown(self) -> None:
        self._json("POST", "/shutdown")
