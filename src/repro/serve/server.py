"""HTTP front end for :class:`~repro.serve.service.ReproService`.

Stdlib only (``http.server``), threaded so a long simulation does not
block health checks.  The protocol is deliberately plain:

==========  ======  ====================================================
endpoint    method  behaviour
==========  ======  ====================================================
/healthz    GET     liveness probe: ``{"ok": true}``
/stats      GET     service counters + executor/cache statistics
/policies   GET     registered policy names
/workloads  GET     PARSEC workload names (plus engines)
/run        POST    body = spec payload; ``?stream=1`` answers with an
                    ``application/x-ndjson`` body — one line per
                    simulation event, then a final ``{"result": ...}``
                    line.  Warm cache hits stream the identical lines
                    (the event stream rides on the cached result).
/batch      POST    body = ``{"specs": [payload, ...]}``; results in
                    submission order
/traces     POST    body = ``.trc`` text (``?name=`` optional); spills
                    into the content-addressed store and returns the
                    ``SourceSpec`` dict (reference it from later runs
                    as ``{"source": "<digest>"}``)
/shutdown   POST    clean stop (the CI smoke job's exit path)
==========  ======  ====================================================

Streaming uses HTTP/1.0 connection-close delimiting — no chunked
transfer encoding to hand-roll, and every stdlib/curl client handles
it.
"""

from __future__ import annotations

import io
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.serve.service import ReproService, ServiceError


class ReproServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ReproService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 service: ReproService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    # Connection-close delimiting makes the JSONL stream's end
    # unambiguous without chunked encoding.
    protocol_version = "HTTP/1.0"

    server: ReproServer  # narrowed for the type checker

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        pass  # quiet by default; /stats carries the counters

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _read_json(self) -> Any:
        raw = self._read_body()
        try:
            return json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}")

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = urlparse(self.path).path
        service = self.server.service
        if path == "/healthz":
            self._send_json({"ok": True})
        elif path == "/stats":
            self._send_json(service.stats())
        elif path == "/policies":
            self._send_json({"policies": service.catalog()["policies"]})
        elif path == "/workloads":
            catalog = service.catalog()
            self._send_json({"workloads": catalog["workloads"],
                             "engines": catalog["engines"]})
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        query = parse_qs(url.query)
        service = self.server.service
        try:
            if url.path == "/run":
                stream = query.get("stream", ["0"])[0] not in ("", "0")
                spec, result = service.run(self._read_json(), stream=stream)
                if stream:
                    self._stream_run(spec, result)
                else:
                    self._send_json({
                        "digest": spec.digest(),
                        "label": spec.label(),
                        "result": result.to_dict(),
                    })
            elif url.path == "/batch":
                payload = self._read_json()
                specs = [service.spec_from_payload(item)
                         for item in payload.get("specs", ())]
                results = service.run_specs(specs)
                self._send_json({"results": [
                    {"digest": spec.digest(), "label": spec.label(),
                     "result": result.to_dict()}
                    for spec, result in zip(specs, results)
                ]})
            elif url.path == "/traces":
                name = query.get("name", [None])[0]
                text = self._read_body().decode("utf-8")
                source = service.ingest(io.StringIO(text), name=name)
                self._send_json({"source": source.to_dict()})
            elif url.path == "/shutdown":
                self._send_json({"ok": True})
                # shutdown() must come from another thread — it joins
                # the serve loop this handler is running inside.
                threading.Thread(target=self.server.shutdown,
                                 daemon=True).start()
            else:
                self._send_error_json(404, f"unknown path {url.path!r}")
        except ServiceError as exc:
            self._send_error_json(400, str(exc))
        except Exception as exc:  # a failed run is a 500, not a crash
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")

    def _stream_run(self, spec: Any, result: Any) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        events = result.events
        for line in (events.trace_lines if events is not None else ()):
            self.wfile.write(line.encode("utf-8"))
            self.wfile.write(b"\n")
        final = {"digest": spec.digest(), "label": spec.label(),
                 "result": result.to_dict()}
        self.wfile.write(json.dumps({"final": final}).encode("utf-8"))
        self.wfile.write(b"\n")


def serve(host: str = "127.0.0.1", port: int = 8023,
          service: ReproService | None = None,
          ready: threading.Event | None = None) -> ReproServer:
    """Run a server until ``/shutdown`` (or KeyboardInterrupt).

    Binds, signals ``ready`` (tests use this to rendezvous), then
    blocks in ``serve_forever``.  Returns the (closed) server so
    callers can inspect the service afterwards.
    """
    server = ReproServer((host, port), service or ReproService())
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return server
