"""Resident multi-tenant simulation service (``repro serve``).

Three layers, all stdlib:

* :class:`~repro.serve.service.ReproService` — the transport-free
  core: accepts :class:`~repro.experiments.runspec.RunSpec` payloads
  (tolerant dict form), executes them through one shared
  :class:`~repro.experiments.executor.ParallelExecutor` (so the warm
  :class:`~repro.experiments.executor.ResultCache` answers repeat
  queries with zero cold-start), and ingests uploaded traces into a
  content-addressed :class:`~repro.trace.TraceStore`.
* :class:`~repro.serve.server.ReproServer` — a threading HTTP server
  over the service: ``GET /healthz /stats /policies /workloads``,
  ``POST /run`` (``?stream=1`` streams the run's event stream as
  JSONL before the final result line), ``POST /batch``, ``POST
  /traces`` (``.trc`` upload), ``POST /shutdown``.
* :class:`~repro.serve.client.ServeClient` — a small blocking client
  over ``http.client`` (what the tests and the CI smoke job use).
"""

from repro.serve.client import ServeClient
from repro.serve.server import ReproServer, serve
from repro.serve.service import ReproService, ServiceError

__all__ = [
    "ReproServer",
    "ReproService",
    "ServeClient",
    "ServiceError",
    "serve",
]
