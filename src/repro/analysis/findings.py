"""Lint findings: what a rule reports and how it is rendered."""

from __future__ import annotations

import re
from dataclasses import dataclass

#: ``# noqa`` / ``# noqa: R001,R003`` suppression comments on the
#: offending line silence the listed rules (or every rule when bare).
_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<ids>[A-Z0-9,\s]+))?", re.IGNORECASE)

#: Historical rule id -> current rule id.  Rules that supersede an
#: older rule register the old id here once; ``--select`` resolution
#: and ``# noqa`` suppression both consult this table, so neither the
#: driver nor the rule classes special-case individual renames.
RULE_ALIASES: dict[str, str] = {
    # R001 (abstract path-enumeration accounting checker, PR 1) was
    # re-implemented on the fixpoint engine as R010.
    "R001": "R010",
}


def canonical_id(rule_id: str) -> str:
    """Resolve a possibly-historical rule id to its current id."""
    rule_id = rule_id.strip().upper()
    return RULE_ALIASES.get(rule_id, rule_id)


def aliases_of(rule_id: str) -> tuple[str, ...]:
    """Historical ids that resolve to ``rule_id`` (sorted)."""
    canonical = canonical_id(rule_id)
    return tuple(sorted(
        old for old, new in RULE_ALIASES.items() if new == canonical
    ))


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``evidence`` carries the hot-region chain for perf-tier findings
    (seed, reason, call path); base-tier rules leave it empty.  The
    renderers surface it, the baseline and ``noqa`` machinery ignore it.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    evidence: tuple[str, ...] = ()

    def render(self) -> str:
        """``file:line:col: rule-id message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def suppressed(
    finding: Finding,
    source_lines: list[str],
    aliases: tuple[str, ...] = (),
) -> bool:
    """True when the finding's line carries a matching ``noqa`` comment.

    Ids listed in the comment are resolved through :data:`RULE_ALIASES`
    (e.g. ``# noqa: R001`` keeps silencing the R010 successor).
    ``aliases`` adds further ids the finding's rule answers to, for
    rules that carry ad hoc aliases beyond the shared table.
    """
    if not 1 <= finding.line <= len(source_lines):
        return False
    match = _NOQA.search(source_lines[finding.line - 1])
    if match is None:
        return False
    ids = match.group("ids")
    if ids is None:
        return True
    wanted = {
        canonical_id(part) for part in ids.split(",") if part.strip()
    }
    accepted = {
        canonical_id(finding.rule_id),
        *(canonical_id(alias) for alias in aliases),
    }
    return bool(accepted & wanted)
