"""Lint findings: what a rule reports and how it is rendered."""

from __future__ import annotations

import re
from dataclasses import dataclass

#: ``# noqa`` / ``# noqa: R001,R003`` suppression comments on the
#: offending line silence the listed rules (or every rule when bare).
_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<ids>[A-Z0-9,\s]+))?", re.IGNORECASE)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """``file:line:col: rule-id message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def suppressed(
    finding: Finding,
    source_lines: list[str],
    aliases: tuple[str, ...] = (),
) -> bool:
    """True when the finding's line carries a matching ``noqa`` comment.

    ``aliases`` lists historical ids the finding's rule also answers to
    (e.g. ``# noqa: R001`` keeps silencing the R010 successor).
    """
    if not 1 <= finding.line <= len(source_lines):
        return False
    match = _NOQA.search(source_lines[finding.line - 1])
    if match is None:
        return False
    ids = match.group("ids")
    if ids is None:
        return True
    wanted = {part.strip().upper() for part in ids.split(",") if part.strip()}
    accepted = {finding.rule_id.upper(), *(alias.upper() for alias in aliases)}
    return bool(accepted & wanted)
