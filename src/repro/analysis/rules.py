"""The project-specific lint rules (R001-R005).

Each rule checks one contract the reproduction's correctness rests on:

``R001``
    Every concrete ``HybridMemoryPolicy.access`` override calls
    ``mm.record_request(...)`` exactly once on every control-flow path,
    so all policies are scored by identical bookkeeping (Eq. 1-3 divide
    event counts by the request total this call maintains).
``R002``
    No unseeded randomness or wall-clock reads inside ``src/repro``:
    RNGs must be ``numpy`` Generators flowing from an explicit seed.
``R003``
    No mutable default arguments.
``R004``
    Every concrete policy class that defines a ``name`` identifier is
    registered in ``policies/registry.py``.
``R005``
    Latency/energy keyword arguments in the device-model layer
    (``repro.memory``) must come from named constants, not inline
    magic numbers.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.context import ProjectContext, SourceFile, is_abstract
from repro.analysis.findings import Finding

#: Saturation value for the R001 path analysis: "two or more calls".
_MANY = 2


class LintRule:
    """Base class: one rule, one ``check`` pass over a parsed file."""

    rule_id: str = "R000"
    title: str = "abstract rule"

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, src: SourceFile, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            path=str(src.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


# ----------------------------------------------------------------------
# R001 — the accounting contract
# ----------------------------------------------------------------------
def _record_request_calls(node: ast.AST) -> int:
    """``record_request`` call sites within one expression/statement head.

    Does not descend into nested function/class definitions or lambdas
    (those bodies do not run inline).
    """
    count = 0
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) \
            else getattr(func, "id", "")
        if name == "record_request":
            count += 1
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        count += _record_request_calls(child)
    return count


def _saturate(count: int) -> int:
    return min(count, _MANY)


def _add_counts(counts: set[int], extra: int) -> set[int]:
    if not extra:
        return set(counts)
    return {_saturate(value + extra) for value in counts}


def _analyze_block(
    stmts: Iterable[ast.stmt], counts: set[int]
) -> tuple[set[int], set[int]]:
    """Abstractly execute a statement list.

    ``counts`` is the set of possible ``record_request`` call totals on
    the paths reaching this block (saturated at :data:`_MANY`).
    Returns ``(fallthrough_counts, return_counts)``; paths ending in
    ``raise`` are dropped (error paths need not account a request).
    """
    returned: set[int] = set()
    for stmt in stmts:
        if not counts:
            break  # remaining statements are unreachable
        counts, exits = _analyze_stmt(stmt, counts)
        returned |= exits
    return counts, returned


def _analyze_stmt(
    stmt: ast.stmt, counts: set[int]
) -> tuple[set[int], set[int]]:
    if isinstance(stmt, ast.Return):
        calls = _record_request_calls(stmt.value) if stmt.value else 0
        return set(), _add_counts(counts, calls)

    if isinstance(stmt, ast.Raise):
        return set(), set()

    if isinstance(stmt, ast.If):
        after_test = _add_counts(counts, _record_request_calls(stmt.test))
        then_fall, then_ret = _analyze_block(stmt.body, after_test)
        else_fall, else_ret = _analyze_block(stmt.orelse, after_test)
        return then_fall | else_fall, then_ret | else_ret

    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
        head = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) \
            else stmt.test
        base = _add_counts(counts, _record_request_calls(head))
        body_fall, body_ret = _analyze_block(stmt.body, {0})
        body_adds = any(value > 0 for value in body_fall | body_ret)
        if body_adds:
            # The body may run zero, one or many times.
            fall = set(base)
            for extra in (0, *body_fall, _MANY):
                fall |= _add_counts(base, extra)
        else:
            fall = base
        returned: set[int] = set()
        for extra in body_ret:
            returned |= _add_counts(base, extra)
        if body_ret and body_adds:
            returned.add(_MANY)
        orelse_fall, orelse_ret = _analyze_block(stmt.orelse, fall)
        return orelse_fall, returned | orelse_ret

    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        calls = sum(
            _record_request_calls(item.context_expr) for item in stmt.items
        )
        return _analyze_block(stmt.body, _add_counts(counts, calls))

    if isinstance(stmt, ast.Try):
        body_fall, body_ret = _analyze_block(stmt.body, counts)
        fall = set(body_fall)
        returned = set(body_ret)
        for handler in stmt.handlers:
            # The exception may fire before or after any body call.
            entry = counts | body_fall
            h_fall, h_ret = _analyze_block(handler.body, entry)
            fall |= h_fall
            returned |= h_ret
        if stmt.orelse:
            fall, o_ret = _analyze_block(stmt.orelse, fall)
            returned |= o_ret
        if stmt.finalbody:
            fall, f_ret = _analyze_block(stmt.finalbody, fall)
            returned |= f_ret
        return fall, returned

    if isinstance(stmt, ast.Match):
        base = _add_counts(counts, _record_request_calls(stmt.subject))
        fall = set(base)  # no case may match
        returned = set()
        for case in stmt.cases:
            c_fall, c_ret = _analyze_block(case.body, base)
            fall |= c_fall
            returned |= c_ret
        return fall, returned

    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return counts, set()  # nested definitions do not run inline

    if isinstance(stmt, (ast.Break, ast.Continue, ast.Pass,
                         ast.Global, ast.Nonlocal,
                         ast.Import, ast.ImportFrom)):
        return counts, set()

    # Simple statements: Expr, Assign, AugAssign, AnnAssign, Assert, ...
    return _add_counts(counts, _record_request_calls(stmt)), set()


def analyze_record_request_paths(func: ast.FunctionDef) -> set[int]:
    """Possible ``record_request`` totals over all paths through ``func``.

    Counts are saturated at 2 (= "two or more").
    """
    fallthrough, returned = _analyze_block(func.body, {0})
    return fallthrough | returned


class RecordRequestRule(LintRule):
    """R001: ``access`` must charge the request exactly once per path."""

    rule_id = "R001"
    title = "policy access() must call mm.record_request exactly once"

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not project.is_policy_class(node) or is_abstract(node):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "access":
                    yield from self._check_access(src, node, item)

    def _check_access(self, src: SourceFile, cls: ast.ClassDef,
                      func: ast.FunctionDef) -> Iterator[Finding]:
        counts = analyze_record_request_paths(func)
        if counts == {1}:
            return
        label = f"{cls.name}.access"
        if counts == {0}:
            message = (f"{label} never calls mm.record_request; every "
                       "request must be counted exactly once")
        elif 0 in counts and any(value >= 1 for value in counts):
            message = (f"{label} skips mm.record_request on some "
                       "control-flow paths; it must run exactly once "
                       "on every path")
        else:
            message = (f"{label} may call mm.record_request more than "
                       "once on a path; requests must be counted "
                       "exactly once")
        yield self.finding(src, func, message)


# ----------------------------------------------------------------------
# R002 — determinism
# ----------------------------------------------------------------------
#: ``numpy.random`` attributes that are seed-explicit and allowed.
_NP_RANDOM_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64",
}
#: Wall-clock reads that break replayability.
_CLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}


class DeterminismRule(LintRule):
    """R002: randomness and time must flow from explicit seeds/inputs."""

    rule_id = "R002"
    title = "no unseeded randomness or wall-clock reads"

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            src, node,
                            "stdlib `random` is process-global state; "
                            "use numpy Generators threaded from an "
                            "explicit seed",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        src, node,
                        "stdlib `random` is process-global state; use "
                        "numpy Generators threaded from an explicit seed",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(src, node)

    def _check_call(self, src: SourceFile,
                    node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            if (isinstance(func, ast.Name) and func.id == "default_rng"
                    and not node.args and not node.keywords):
                yield self.finding(
                    src, node,
                    "default_rng() without a seed is entropy-seeded; "
                    "pass the simulation seed through",
                )
            return
        owner = func.value
        owner_name = owner.id if isinstance(owner, ast.Name) else (
            owner.attr if isinstance(owner, ast.Attribute) else ""
        )
        if (owner_name, func.attr) in _CLOCK_CALLS:
            yield self.finding(
                src, node,
                f"wall-clock read `{owner_name}.{func.attr}()` makes "
                "runs unreplayable; take timestamps as inputs",
            )
            return
        # numpy legacy global RNG: np.random.<anything mutable>.
        if (func.attr not in _NP_RANDOM_ALLOWED
                and isinstance(owner, ast.Attribute)
                and owner.attr == "random"
                and isinstance(owner.value, ast.Name)
                and owner.value.id in ("np", "numpy")):
            yield self.finding(
                src, node,
                f"legacy global RNG `np.random.{func.attr}` is shared "
                "state; use np.random.default_rng(seed)",
            )
            return
        if (func.attr == "default_rng" and not node.args
                and not node.keywords):
            yield self.finding(
                src, node,
                "default_rng() without a seed is entropy-seeded; pass "
                "the simulation seed through",
            )


# ----------------------------------------------------------------------
# R003 — mutable defaults
# ----------------------------------------------------------------------
_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set,
    ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_BUILTINS = {"list", "dict", "set", "bytearray"}


class MutableDefaultRule(LintRule):
    """R003: default argument values must be immutable."""

    rule_id = "R003"
    title = "no mutable default arguments"

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                name = getattr(node, "name", "<lambda>")
                defaults = list(node.args.defaults)
                defaults += [d for d in node.args.kw_defaults if d is not None]
                for default in defaults:
                    if self._is_mutable(default):
                        yield self.finding(
                            src, default,
                            f"mutable default argument in `{name}`; "
                            "use None and create inside the function",
                        )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, _MUTABLE_LITERALS):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_BUILTINS
        )


# ----------------------------------------------------------------------
# R004 — registry coverage
# ----------------------------------------------------------------------
class RegistryRule(LintRule):
    """R004: named concrete policies must be in the registry."""

    rule_id = "R004"
    title = "every named policy class is registered"

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        if project.registry_names is None:
            return  # no registry among the linted files; cannot check
        if src.path.name == "registry.py":
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not project.is_policy_class(node) or is_abstract(node):
                continue
            policy_name = self._declared_name(node)
            if policy_name is None or policy_name == "abstract":
                continue
            registered = (
                node.name in project.registry_names
                or policy_name in project.registry_names
            )
            if not registered:
                yield self.finding(
                    src, node,
                    f"policy class {node.name} (name={policy_name!r}) "
                    "is not registered in policies/registry.py",
                )

    @staticmethod
    def _declared_name(node: ast.ClassDef) -> str | None:
        for item in node.body:
            if isinstance(item, ast.Assign):
                targets = [
                    t.id for t in item.targets if isinstance(t, ast.Name)
                ]
                value = item.value
                if "name" in targets and isinstance(value, ast.Constant) \
                        and isinstance(value.value, str):
                    return value.value
            elif isinstance(item, ast.AnnAssign):
                target = item.target
                value = item.value
                if (isinstance(target, ast.Name) and target.id == "name"
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    return value.value
        return None


# ----------------------------------------------------------------------
# R005 — no magic latency/energy numbers in the device-model layer
# ----------------------------------------------------------------------
class MagicNumberRule(LintRule):
    """R005: latency/energy values must reference named constants."""

    rule_id = "R005"
    title = "device latencies/energies come from named constants"

    #: Keyword-argument name fragments the rule applies to.
    keywords = ("latency", "energy")
    #: Only the device/cost-model layer is constrained.
    scope_dir = "memory"

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        if self.scope_dir not in src.path.parts:
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                lowered = keyword.arg.lower()
                if not any(frag in lowered for frag in self.keywords):
                    continue
                if self._is_magic(keyword.value):
                    yield self.finding(
                        src, keyword.value,
                        f"inline magic number for `{keyword.arg}`; "
                        "express it via a named unit constant "
                        "(e.g. 50 * NANOSECOND)",
                    )

    @staticmethod
    def _is_magic(node: ast.expr) -> bool:
        """A bare non-zero numeric literal (possibly negated)."""
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
            and node.value != 0
        )


#: The rules ``repro lint`` runs by default, in report order.
DEFAULT_RULES: tuple[LintRule, ...] = (
    RecordRequestRule(),
    DeterminismRule(),
    MutableDefaultRule(),
    RegistryRule(),
    MagicNumberRule(),
)
