"""The project-specific lint rules (R002-R012).

The interprocedural ``--deep`` tier (R013-R015) lives in
:mod:`repro.analysis.interproc.interproc_rules`.

Each rule checks one contract the reproduction's correctness rests on:

``R002``
    No unseeded randomness or wall-clock reads inside ``src/repro``:
    RNGs must be ``numpy`` Generators flowing from an explicit seed.
``R003``
    No mutable default arguments.
``R004``
    Every concrete policy class that defines a ``name`` identifier is
    registered in ``policies/registry.py``.
``R005``
    Latency/energy keyword arguments in the device-model layer
    (``repro.memory``) must come from named constants, not inline
    magic numbers.
``R006``/``R007``
    Units-of-measure checking: no arithmetic across incompatible
    physical dimensions (ns vs s, pJ vs J), and no dimensions outside
    the model vocabulary (:mod:`repro.analysis.flow.units`).
``R008``/``R009``
    Typestate checking of the page life-cycle protocol and the
    count-before-traffic ordering of ``mm.record_request``
    (:mod:`repro.analysis.flow.typestate`).
``R010``
    Every concrete ``HybridMemoryPolicy.access`` override calls
    ``mm.record_request(...)`` exactly once on every control-flow path,
    so all policies are scored by identical bookkeeping (Eq. 1-3 divide
    event counts by the request total this call maintains).  R010
    supersedes PR 1's R001 — same contract, now solved on the fixpoint
    engine of :mod:`repro.analysis.flow` instead of by abstract path
    enumeration — and answers to ``R001`` as an alias in ``--select``
    and ``# noqa`` comments.
``R011``
    ``HybridMemorySimulator`` is constructed only inside
    ``repro.experiments``/``repro.mmu``; everything else runs through
    ``RunSpec.execute()`` / the parallel executor so all evaluation
    paths share one simulation recipe and the result cache.
``R012``
    R010's contract extended to the batched kernels: every request
    loop in an ``access_batch`` override performs exactly one
    accounting event per iteration path — a ``record_request`` /
    ``access`` call or a ``+=`` on a deferred request counter — so
    the inlined fast paths cannot silently drop or double-charge a
    request (:mod:`repro.analysis.flow.accounting`).

R006-R010 and R012 are dataflow analyses in :mod:`repro.analysis.flow`;
this module hosts the single-pass syntactic rules and assembles
:data:`DEFAULT_RULES`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext, SourceFile, is_abstract
from repro.analysis.findings import Finding
from repro.analysis.flow.accounting import (
    AccountingRule,
    BatchAccountingRule,
    analyze_batch_loop_paths,
    analyze_record_request_paths,
)
from repro.analysis.flow.typestate import ProtocolRule, RecordedFirstRule
from repro.analysis.flow.units import UnitsMismatchRule, UnitsSinkRule

__all__ = [
    "LintRule",
    "DeterminismRule",
    "MutableDefaultRule",
    "RegistryRule",
    "MagicNumberRule",
    "SimulatorConstructionRule",
    "AccountingRule",
    "BatchAccountingRule",
    "ProtocolRule",
    "RecordedFirstRule",
    "UnitsMismatchRule",
    "UnitsSinkRule",
    "analyze_batch_loop_paths",
    "analyze_record_request_paths",
    "DEFAULT_RULES",
]


class LintRule:
    """Base class: one rule, one ``check`` pass over a parsed file.

    The lint driver duck-types rules (``rule_id``/``title``/``check``
    and an optional ``aliases`` tuple), so the dataflow rules in
    :mod:`repro.analysis.flow` participate without inheriting from
    this class.
    """

    rule_id: str = "R000"
    title: str = "abstract rule"
    aliases: tuple[str, ...] = ()

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, src: SourceFile, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            path=str(src.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


# ----------------------------------------------------------------------
# R002 — determinism
# ----------------------------------------------------------------------
#: ``numpy.random`` attributes that are seed-explicit and allowed.
_NP_RANDOM_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64",
}
#: Wall-clock reads that break replayability.
_CLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}


class DeterminismRule(LintRule):
    """R002: randomness and time must flow from explicit seeds/inputs."""

    rule_id = "R002"
    title = "no unseeded randomness or wall-clock reads"

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            src, node,
                            "stdlib `random` is process-global state; "
                            "use numpy Generators threaded from an "
                            "explicit seed",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        src, node,
                        "stdlib `random` is process-global state; use "
                        "numpy Generators threaded from an explicit seed",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(src, node)

    def _check_call(self, src: SourceFile,
                    node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            if (isinstance(func, ast.Name) and func.id == "default_rng"
                    and not node.args and not node.keywords):
                yield self.finding(
                    src, node,
                    "default_rng() without a seed is entropy-seeded; "
                    "pass the simulation seed through",
                )
            return
        owner = func.value
        owner_name = owner.id if isinstance(owner, ast.Name) else (
            owner.attr if isinstance(owner, ast.Attribute) else ""
        )
        if (owner_name, func.attr) in _CLOCK_CALLS:
            yield self.finding(
                src, node,
                f"wall-clock read `{owner_name}.{func.attr}()` makes "
                "runs unreplayable; take timestamps as inputs",
            )
            return
        # numpy legacy global RNG: np.random.<anything mutable>.
        if (func.attr not in _NP_RANDOM_ALLOWED
                and isinstance(owner, ast.Attribute)
                and owner.attr == "random"
                and isinstance(owner.value, ast.Name)
                and owner.value.id in ("np", "numpy")):
            yield self.finding(
                src, node,
                f"legacy global RNG `np.random.{func.attr}` is shared "
                "state; use np.random.default_rng(seed)",
            )
            return
        if (func.attr == "default_rng" and not node.args
                and not node.keywords):
            yield self.finding(
                src, node,
                "default_rng() without a seed is entropy-seeded; pass "
                "the simulation seed through",
            )


# ----------------------------------------------------------------------
# R003 — mutable defaults
# ----------------------------------------------------------------------
_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set,
    ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_BUILTINS = {"list", "dict", "set", "bytearray"}


class MutableDefaultRule(LintRule):
    """R003: default argument values must be immutable."""

    rule_id = "R003"
    title = "no mutable default arguments"

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                name = getattr(node, "name", "<lambda>")
                defaults = list(node.args.defaults)
                defaults += [d for d in node.args.kw_defaults if d is not None]
                for default in defaults:
                    if self._is_mutable(default):
                        yield self.finding(
                            src, default,
                            f"mutable default argument in `{name}`; "
                            "use None and create inside the function",
                        )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, _MUTABLE_LITERALS):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_BUILTINS
        )


# ----------------------------------------------------------------------
# R004 — registry coverage
# ----------------------------------------------------------------------
class RegistryRule(LintRule):
    """R004: named concrete policies must be in the registry."""

    rule_id = "R004"
    title = "every named policy class is registered"

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        if project.registry_names is None:
            return  # no registry among the linted files; cannot check
        if src.path.name == "registry.py":
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not project.is_policy_class(node) or is_abstract(node):
                continue
            policy_name = self._declared_name(node)
            if policy_name is None or policy_name == "abstract":
                continue
            registered = (
                node.name in project.registry_names
                or policy_name in project.registry_names
            )
            if not registered:
                yield self.finding(
                    src, node,
                    f"policy class {node.name} (name={policy_name!r}) "
                    "is not registered in policies/registry.py",
                )

    @staticmethod
    def _declared_name(node: ast.ClassDef) -> str | None:
        for item in node.body:
            if isinstance(item, ast.Assign):
                targets = [
                    t.id for t in item.targets if isinstance(t, ast.Name)
                ]
                value = item.value
                if "name" in targets and isinstance(value, ast.Constant) \
                        and isinstance(value.value, str):
                    return value.value
            elif isinstance(item, ast.AnnAssign):
                target = item.target
                value = item.value
                if (isinstance(target, ast.Name) and target.id == "name"
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    return value.value
        return None


# ----------------------------------------------------------------------
# R005 — no magic latency/energy numbers in the device-model layer
# ----------------------------------------------------------------------
class MagicNumberRule(LintRule):
    """R005: latency/energy values must reference named constants."""

    rule_id = "R005"
    title = "device latencies/energies come from named constants"

    #: Keyword-argument name fragments the rule applies to.
    keywords = ("latency", "energy")
    #: Only the device/cost-model layer is constrained.
    scope_dir = "memory"

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        if self.scope_dir not in src.path.parts:
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                lowered = keyword.arg.lower()
                if not any(frag in lowered for frag in self.keywords):
                    continue
                if self._is_magic(keyword.value):
                    yield self.finding(
                        src, keyword.value,
                        f"inline magic number for `{keyword.arg}`; "
                        "express it via a named unit constant "
                        "(e.g. 50 * NANOSECOND)",
                    )

    @staticmethod
    def _is_magic(node: ast.expr) -> bool:
        """A bare non-zero numeric literal (possibly negated)."""
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
            and node.value != 0
        )


# ----------------------------------------------------------------------
# R011 — all evaluation paths share the RunSpec simulation recipe
# ----------------------------------------------------------------------
class SimulatorConstructionRule(LintRule):
    """R011: no direct simulator construction outside the engine.

    ``HybridMemorySimulator`` may only be instantiated inside
    ``repro.experiments`` (the :class:`RunSpec`/executor engine) and
    ``repro.mmu`` (where it lives).  Everything else goes through
    ``RunSpec.execute()`` / ``ParallelExecutor.submit()`` /
    ``repro.mmu.simulate`` so every evaluation shares one simulation
    recipe — warm-up handling, sanitizer wiring, gap proration — and
    every run is cacheable by spec digest.
    """

    rule_id = "R011"
    title = "simulations go through RunSpec.execute / the executor"

    target = "HybridMemorySimulator"
    #: Directories allowed to construct the simulator directly.
    allowed_dirs = ("experiments", "mmu")

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        if any(part in src.path.parts for part in self.allowed_dirs):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = None
            if isinstance(callee, ast.Name):
                name = callee.id
            elif isinstance(callee, ast.Attribute):
                name = callee.attr
            if name != self.target:
                continue
            yield self.finding(
                src, node,
                f"direct `{self.target}(...)` construction outside "
                "repro.experiments/repro.mmu; use `RunSpec.execute()`, "
                "`ParallelExecutor.submit()` or `repro.mmu.simulate` so "
                "the run shares the engine's recipe and result cache",
            )


#: The rules ``repro lint`` runs by default, in report order.
DEFAULT_RULES: tuple = (
    DeterminismRule(),
    MutableDefaultRule(),
    RegistryRule(),
    MagicNumberRule(),
    SimulatorConstructionRule(),
    UnitsMismatchRule(),
    UnitsSinkRule(),
    ProtocolRule(),
    RecordedFirstRule(),
    AccountingRule(),
    BatchAccountingRule(),
)
