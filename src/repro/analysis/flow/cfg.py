"""Intraprocedural control-flow graphs over ``ast`` statements.

:func:`build_cfg` turns one ``ast.FunctionDef`` body into a graph of
:class:`Block` nodes.  A block holds a straight-line sequence of
statements; compound statements (``if``/``while``/``for``/``match``)
appear in the block that evaluates their *head* expression only — their
bodies live in successor blocks — so a dataflow transfer function must
never descend into a statement's child statements.  Use
:func:`head_expressions` to get exactly the expressions a statement
evaluates at its position in the graph.

Three distinguished blocks frame every graph:

``cfg.entry``
    Where execution starts (it may already carry statements).
``cfg.exit``
    The normal-termination block: every ``return`` and the final
    fall-through edge lead here.  Always empty.
``cfg.raise_exit``
    Where uncaught ``raise`` paths end.  Analyses that exempt error
    paths (like the accounting rule) simply never read this block.

Exception modelling: inside a ``try`` body every statement boundary
gets an edge to each handler of the innermost ``try``, so a handler
observes the state *before* any statement that may throw.  ``raise``
statements additionally edge to the handlers and to ``raise_exit``
(the raised type may not match any handler clause).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class Block:
    """A straight-line run of statements with explicit successor edges."""

    index: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


def head_expressions(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions ``stmt`` evaluates at its block position.

    For a compound statement only the head is evaluated where the
    statement sits in the CFG (its body belongs to successor blocks);
    for a simple statement the whole statement is.  Callers composing
    transfer functions should treat a non-empty result as "visit these
    expressions instead of the statement node".
    """
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.While, ast.If)):
        return [stmt.test]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return []


#: Statements whose bodies define a new scope: inert in the enclosing CFG.
SCOPE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class CFG:
    """A control-flow graph for one function body."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry = self._new_block().index
        self.exit = self._new_block().index
        self.raise_exit = self._new_block().index

    def _new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def reverse_postorder(self) -> list[Block]:
        """Reachable blocks, loop heads before loop bodies (iterative DFS)."""
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            index, child = stack[-1]
            succs = self.blocks[index].succs
            if child < len(succs):
                stack[-1] = (index, child + 1)
                succ = succs[child]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, 0))
            else:
                stack.pop()
                order.append(index)
        return [self.blocks[index] for index in reversed(order)]


class _Builder:
    """Single-use CFG construction state (loop and handler stacks)."""

    def __init__(self) -> None:
        self.cfg = CFG()
        #: (loop-head block, after-loop block) per enclosing loop.
        self.loops: list[tuple[int, int]] = []
        #: handler-entry blocks of each enclosing ``try`` with handlers.
        self.handlers: list[list[int]] = []

    # ------------------------------------------------------------------
    def build(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        end = self._stmts(func.body, self.cfg.entry)
        self.cfg.add_edge(end, self.cfg.exit)
        return self.cfg

    def _stmts(self, stmts: list[ast.stmt], cur: int) -> int:
        for stmt in stmts:
            cur = self._stmt(stmt, cur)
        return cur

    def _innermost_handlers(self) -> list[int]:
        return self.handlers[-1] if self.handlers else []

    def _stmt(self, stmt: ast.stmt, cur: int) -> int:
        targets = self._innermost_handlers()
        if targets and not isinstance(stmt, SCOPE_STMTS):
            # The statement may throw: expose the state at this boundary
            # to the handlers, and seal the boundary into its own block.
            nxt = self.cfg._new_block().index
            self.cfg.add_edge(cur, nxt)
            for handler in targets:
                self.cfg.add_edge(cur, handler)
            cur = nxt

        if isinstance(stmt, ast.Return):
            self.cfg.blocks[cur].stmts.append(stmt)
            self.cfg.add_edge(cur, self.cfg.exit)
            return self.cfg._new_block().index
        if isinstance(stmt, ast.Raise):
            self.cfg.blocks[cur].stmts.append(stmt)
            for handler in self._innermost_handlers():
                self.cfg.add_edge(cur, handler)
            self.cfg.add_edge(cur, self.cfg.raise_exit)
            return self.cfg._new_block().index
        if isinstance(stmt, ast.Break):
            if self.loops:
                self.cfg.add_edge(cur, self.loops[-1][1])
                return self.cfg._new_block().index
            return cur
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self.cfg.add_edge(cur, self.loops[-1][0])
                return self.cfg._new_block().index
            return cur
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.cfg.blocks[cur].stmts.append(stmt)
            return self._stmts(stmt.body, cur)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cur)
        # Simple statements — including nested def/class, which are
        # inert at this level (their bodies do not run inline).
        self.cfg.blocks[cur].stmts.append(stmt)
        return cur

    # ------------------------------------------------------------------
    def _if(self, stmt: ast.If, cur: int) -> int:
        self.cfg.blocks[cur].stmts.append(stmt)
        after = self.cfg._new_block().index
        then_entry = self.cfg._new_block().index
        self.cfg.add_edge(cur, then_entry)
        then_end = self._stmts(stmt.body, then_entry)
        self.cfg.add_edge(then_end, after)
        if stmt.orelse:
            else_entry = self.cfg._new_block().index
            self.cfg.add_edge(cur, else_entry)
            else_end = self._stmts(stmt.orelse, else_entry)
            self.cfg.add_edge(else_end, after)
        else:
            self.cfg.add_edge(cur, after)
        return after

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor, cur: int) -> int:
        head = self.cfg._new_block().index
        self.cfg.add_edge(cur, head)
        self.cfg.blocks[head].stmts.append(stmt)
        after = self.cfg._new_block().index
        body_entry = self.cfg._new_block().index
        self.cfg.add_edge(head, body_entry)
        self.loops.append((head, after))
        body_end = self._stmts(stmt.body, body_entry)
        self.loops.pop()
        self.cfg.add_edge(body_end, head)
        if stmt.orelse:
            else_entry = self.cfg._new_block().index
            self.cfg.add_edge(head, else_entry)
            else_end = self._stmts(stmt.orelse, else_entry)
            self.cfg.add_edge(else_end, after)
        else:
            self.cfg.add_edge(head, after)
        return after

    def _try(self, stmt: ast.Try, cur: int) -> int:
        handler_entries = [self.cfg._new_block().index for _ in stmt.handlers]
        if handler_entries:
            self.handlers.append(handler_entries)
        body_end = self._stmts(stmt.body, cur)
        if handler_entries:
            self.handlers.pop()
        if stmt.orelse:
            body_end = self._stmts(stmt.orelse, body_end)
        handler_ends = [
            self._stmts(handler.body, entry)
            for handler, entry in zip(stmt.handlers, handler_entries)
        ]
        after = self.cfg._new_block().index
        self.cfg.add_edge(body_end, after)
        for handler_end in handler_ends:
            self.cfg.add_edge(handler_end, after)
        if stmt.finalbody:
            return self._stmts(stmt.finalbody, after)
        return after

    def _match(self, stmt: ast.Match, cur: int) -> int:
        self.cfg.blocks[cur].stmts.append(stmt)
        after = self.cfg._new_block().index
        for case in stmt.cases:
            case_entry = self.cfg._new_block().index
            self.cfg.add_edge(cur, case_entry)
            case_end = self._stmts(case.body, case_entry)
            self.cfg.add_edge(case_end, after)
        # Conservatively assume no case may match (guards can all fail).
        self.cfg.add_edge(cur, after)
        return after


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder().build(func)
