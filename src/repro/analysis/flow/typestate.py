"""Typestate verification of the page life-cycle protocol (R008/R009).

The :class:`~repro.mmu.manager.MemoryManager` API implies a protocol
automaton per page: a page a policy just evicted to disk is *absent*
and must not be served, migrated, swapped, copied or evicted again; a
page just filled or migrated is *resident* and must not be
fault-filled again without an eviction in between.  The manager checks
some of this dynamically (and the simulation sanitizer more), but only
on the traces a test happens to drive; the typestate rules prove it
over *all* control-flow paths of the policy source.

``R008``
    Tracks an abstract state per page-expression (``page``,
    ``victim.page``, ...) through every method of a concrete policy
    class with the fixpoint engine.  States are ``RESIDENT`` and
    ``ABSENT``; an untracked expression is "maybe" and never reported,
    so only *definite* protocol violations (an eviction followed by a
    use of the same expression on some path) are flagged.  Assigning to
    a tracked name, or passing it to any non-manager call, resets it to
    "maybe" — the analysis is name-based and deliberately gives up
    rather than guess across aliasing or helper calls.

``R009``
    Orders accounting before memory traffic inside ``access``: the
    paper's Table I probabilities divide per-path counters by total
    requests, so a request must be counted (``mm.record_request``)
    before the first protocol operation it triggers.  A call to any
    policy helper degrades the state to "maybe" (the helper may do the
    counting), keeping the rule definite-violation-only.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.analysis.context import ProjectContext, SourceFile, is_abstract
from repro.analysis.findings import Finding
from repro.analysis.flow.cfg import CFG, SCOPE_STMTS, build_cfg, head_expressions
from repro.analysis.flow.engine import (
    FixpointDivergence,
    FlowAnalysis,
    Solution,
    solve_forward,
)
from repro.analysis.flow.lattice import map_join

#: Page states of the protocol automaton.  An expression missing from
#: the environment is "maybe" (unknown), which never triggers a report.
RESIDENT = "resident"
ABSENT = "absent"


@dataclass(frozen=True)
class ProtocolOp:
    """Life-cycle contract of one MemoryManager operation."""

    #: positional indices of the page arguments the op acts on.
    page_args: tuple[int, ...]
    #: page state in which calling the op is a protocol violation.
    forbidden: str
    #: message template (``{key}`` is the page expression).
    message: str
    #: page state after the op, or ``None`` to leave it unchanged.
    result: str | None


PROTOCOL: dict[str, ProtocolOp] = {
    "serve_hit": ProtocolOp(
        page_args=(0,),
        forbidden=ABSENT,
        message="serves a hit on `{key}` after it was evicted to disk",
        result=RESIDENT,
    ),
    "fault_fill": ProtocolOp(
        page_args=(0,),
        forbidden=RESIDENT,
        message=(
            "fault-fills `{key}` while it is already resident; "
            "evict it before reusing the frame"
        ),
        result=RESIDENT,
    ),
    "migrate": ProtocolOp(
        page_args=(0,),
        forbidden=ABSENT,
        message=(
            "migrates `{key}` after it was evicted to disk; "
            "only resident pages can migrate"
        ),
        result=RESIDENT,
    ),
    "swap": ProtocolOp(
        page_args=(0, 1),
        forbidden=ABSENT,
        message=(
            "swaps `{key}` after it was evicted to disk; "
            "only resident pages can swap"
        ),
        result=RESIDENT,
    ),
    "evict_to_disk": ProtocolOp(
        page_args=(0,),
        forbidden=ABSENT,
        message=(
            "evicts `{key}` twice; a page already on disk cannot be "
            "evicted again (double eviction)"
        ),
        result=ABSENT,
    ),
    "create_copy": ProtocolOp(
        page_args=(0,),
        forbidden=ABSENT,
        message="creates a DRAM copy of `{key}` after it was evicted to disk",
        result=None,
    ),
    "drop_copy": ProtocolOp(
        page_args=(0,),
        forbidden=ABSENT,
        message="drops the DRAM copy of `{key}` after it was evicted to disk",
        result=None,
    ),
}


def expr_key(expr: ast.expr) -> str | None:
    """Stable key for a trackable page expression.

    Only bare names and dotted attribute chains (``victim.page``) are
    trackable; anything computed is not.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = expr_key(expr.value)
        if base is not None:
            return f"{base}.{expr.attr}"
    return None


def _root(key: str) -> str:
    return key.split(".", 1)[0]


def is_manager_call(call: ast.Call) -> str | None:
    """The MemoryManager method name when ``call`` targets ``mm``/``self.mm``."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    receiver = func.value
    is_mm = (isinstance(receiver, ast.Name) and receiver.id == "mm") or (
        isinstance(receiver, ast.Attribute) and receiver.attr == "mm"
    )
    return func.attr if is_mm else None


def _calls_in_order(node: ast.AST) -> Iterator[ast.Call]:
    """Call nodes under ``node`` in source (pre-)order, skipping scopes."""
    if isinstance(node, ast.Call):
        yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (*SCOPE_STMTS, ast.Lambda)):
            continue
        yield from _calls_in_order(child)


def _evaluated_nodes(stmt: ast.stmt) -> list[ast.AST]:
    heads = head_expressions(stmt)
    if heads:
        return list(heads)
    if isinstance(stmt, SCOPE_STMTS):
        return []
    return [stmt]


def _assigned_roots(stmt: ast.stmt) -> set[str]:
    """Root names (re)bound by ``stmt`` at its CFG position."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [
            item.optional_vars for item in stmt.items if item.optional_vars is not None
        ]
    roots: set[str] = set()
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                roots.add(node.id)
            elif isinstance(node, ast.Attribute):
                key = expr_key(node)
                if key is not None:
                    roots.add(_root(key))
    return roots


#: Callback reporting a violation: (call node, message).
Report = Callable[[ast.Call, str], None]


class PageProtocolAnalysis(FlowAnalysis[dict]):
    """Forward per-page-expression state machine (rule R008)."""

    def initial(self) -> dict:
        return {}

    def join(self, a: dict, b: dict) -> dict:
        return map_join(a, b)

    def transfer(self, stmt: ast.stmt, state: dict) -> dict:
        return self.apply(stmt, state, None)

    def apply(self, stmt: ast.stmt, state: dict, report: Report | None) -> dict:
        state = dict(state)
        for node in _evaluated_nodes(stmt):
            for call in _calls_in_order(node):
                op = PROTOCOL.get(is_manager_call(call) or "")
                if op is not None:
                    self._apply_op(call, op, state, report)
                else:
                    # Any other call may touch the pages it receives
                    # (helpers run manager ops of their own): forget them.
                    for arg in call.args:
                        key = expr_key(arg)
                        if key is not None:
                            state.pop(key, None)
        rebound = _assigned_roots(stmt)
        if rebound:
            for key in [key for key in state if _root(key) in rebound]:
                del state[key]
        return state

    @staticmethod
    def _apply_op(
        call: ast.Call, op: ProtocolOp, state: dict, report: Report | None
    ) -> None:
        for index in op.page_args:
            if index >= len(call.args):
                continue
            key = expr_key(call.args[index])
            if key is None:
                continue
            if report is not None and state.get(key) == op.forbidden:
                report(call, op.message.format(key=key))
            if op.result is not None:
                state[key] = op.result


#: R009 accounting-order states (module-level so tests can import them).
NOT_RECORDED = "not_recorded"
RECORDED = "recorded"
MAYBE = "maybe"

_ORDER_MESSAGE = (
    "calls mm.{op} before mm.record_request; the request must be "
    "counted before it generates memory traffic"
)


class RecordedFirstAnalysis(FlowAnalysis[str]):
    """Forward has-the-request-been-counted analysis (rule R009)."""

    def initial(self) -> str:
        return NOT_RECORDED

    def join(self, a: str, b: str) -> str:
        return a if a == b else MAYBE

    def transfer(self, stmt: ast.stmt, state: str) -> str:
        return self.apply(stmt, state, None)

    def apply(self, stmt: ast.stmt, state: str, report: Report | None) -> str:
        for node in _evaluated_nodes(stmt):
            for call in _calls_in_order(node):
                name = is_manager_call(call)
                if name == "record_request":
                    state = RECORDED
                elif name in PROTOCOL:
                    if report is not None and state == NOT_RECORDED:
                        report(call, _ORDER_MESSAGE.format(op=name))
                elif name is None and state == NOT_RECORDED and _is_self_call(call):
                    # A policy helper may do the counting itself.
                    state = MAYBE
        return state


def _is_self_call(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    )


def _replay(
    cfg: CFG,
    solution: "Solution[dict] | Solution[str]",
    analysis: "PageProtocolAnalysis | RecordedFirstAnalysis",
    report: Report,
) -> None:
    """Re-run transfers over converged block-entry states, reporting."""
    for block in cfg.reverse_postorder():
        state = solution.block_in[block.index]
        if state is None:
            continue
        for stmt in block.stmts:
            state = analysis.apply(stmt, state, report)


class _TypestateRuleBase:
    """Shared driver over concrete policy classes."""

    rule_id = "R000"
    title = ""
    aliases: tuple[str, ...] = ()

    def check(self, src: SourceFile, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not project.is_policy_class(node) or is_abstract(node):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and self._selects(item):
                    yield from self._check_method(src, node, item)

    def _selects(self, func: ast.FunctionDef) -> bool:
        raise NotImplementedError

    def _make_analysis(self) -> "PageProtocolAnalysis | RecordedFirstAnalysis":
        raise NotImplementedError

    def _check_method(
        self, src: SourceFile, cls: ast.ClassDef, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        analysis = self._make_analysis()
        cfg = build_cfg(func)
        try:
            solution = solve_forward(cfg, analysis)
        except FixpointDivergence:  # pragma: no cover - defensive
            return
        findings: list[Finding] = []
        seen: set[tuple[int, int]] = set()
        label = f"{cls.name}.{func.name}"

        def report(call: ast.Call, message: str) -> None:
            key = (call.lineno, call.col_offset)
            if key in seen:
                return
            seen.add(key)
            findings.append(
                Finding(
                    path=str(src.path),
                    line=call.lineno,
                    col=call.col_offset + 1,
                    rule_id=self.rule_id,
                    message=f"{label} {message}",
                )
            )

        _replay(cfg, solution, analysis, report)
        yield from findings


class ProtocolRule(_TypestateRuleBase):
    """R008: policies must respect the page life-cycle protocol."""

    rule_id = "R008"
    title = "policy methods follow the page life-cycle protocol"

    def _selects(self, func: ast.FunctionDef) -> bool:
        return True

    def _make_analysis(self) -> PageProtocolAnalysis:
        return PageProtocolAnalysis()


class RecordedFirstRule(_TypestateRuleBase):
    """R009: access() must count the request before memory traffic."""

    rule_id = "R009"
    title = "access() counts the request before touching memory"

    def _selects(self, func: ast.FunctionDef) -> bool:
        return func.name == "access"

    def _make_analysis(self) -> RecordedFirstAnalysis:
        return RecordedFirstAnalysis()
