"""Units-of-measure inference on the dataflow engine (rules R006/R007).

The analysis assigns every expression an abstract *dimension* — an
integer exponent vector over the base dimensions time (s), energy (J)
and bytes — and propagates dimensions flow-sensitively through local
assignments with the fixpoint engine.  Dimensions are seeded from
three places:

* the named unit constants of :mod:`repro.memory.devices`
  (``NANOSECOND`` is time, ``NANOJOULE`` energy, ``GIB`` bytes, ...);
* annotations using the aliases of :mod:`repro.units` (``Seconds``,
  ``Joules``, ``Watts``, ``Bytes``, ``Count``, ``Ratio``) on dataclass
  fields, function returns and parameters, collected across every
  linted file into a name-keyed registry;
* plain numeric literals, which are *polymorphic scalars*: they adopt
  whatever dimension arithmetic needs (``50 * NANOSECOND`` is time).

Everything else is *unknown*, and unknown never produces a finding —
the checker reports only definite violations:

``R006``
    Adding, subtracting or comparing two expressions of different
    known dimensions (seconds + joules), or passing a known dimension
    into a unit-annotated sink (keyword argument, annotated assignment,
    attribute field, function return) expecting a different one.
``R007``
    An assignment/return/argument whose value has a known dimension
    outside the model's vocabulary — not expressible as a quotient of
    two named dimensions (dimensionless, time, energy, bytes, power).
    This is how a double unit conversion surfaces: seconds * NANOSECOND
    is time^2, which no sink in the model accepts.

Like any name-based intraprocedural analysis this is unsound in both
directions by design: aliasing, attribute mutation and unannotated
helpers all fall to "unknown" rather than guessing.  The value is the
direction it *is* precise in — the straight-line arithmetic of
``metrics.py``/``power.py`` where Eq. 1-3 actually live.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator, Union

from repro.analysis.context import ProjectContext, SourceFile
from repro.analysis.findings import Finding
from repro.analysis.flow.cfg import SCOPE_STMTS, build_cfg, head_expressions
from repro.analysis.flow.engine import FixpointDivergence, FlowAnalysis, solve_forward

#: Exponents outside this magnitude collapse to unknown, which bounds
#: the lattice height (a loop multiplying by a unit would otherwise
#: climb time, time^2, time^3, ... forever).
MAX_EXPONENT = 3


@dataclass(frozen=True)
class Dim:
    """A dimension as integer exponents over (time, energy, byte)."""

    time: int = 0
    energy: int = 0
    byte: int = 0

    def mul(self, other: "Dim") -> "Dim | None":
        return _bounded(
            self.time + other.time,
            self.energy + other.energy,
            self.byte + other.byte,
        )

    def div(self, other: "Dim") -> "Dim | None":
        return _bounded(
            self.time - other.time,
            self.energy - other.energy,
            self.byte - other.byte,
        )

    def pow(self, exponent: int) -> "Dim | None":
        return _bounded(
            self.time * exponent, self.energy * exponent, self.byte * exponent
        )

    @property
    def is_dimensionless(self) -> bool:
        return self == DIMENSIONLESS

    def __str__(self) -> str:
        if self.is_dimensionless:
            return "dimensionless"
        parts = []
        for symbol, exponent in (("s", self.time), ("J", self.energy), ("B", self.byte)):
            if exponent == 1:
                parts.append(symbol)
            elif exponent:
                parts.append(f"{symbol}^{exponent}")
        return "*".join(parts)


def _bounded(time: int, energy: int, byte: int) -> Dim | None:
    if max(abs(time), abs(energy), abs(byte)) > MAX_EXPONENT:
        return None
    return Dim(time=time, energy=energy, byte=byte)


DIMENSIONLESS = Dim()
TIME = Dim(time=1)
ENERGY = Dim(energy=1)
BYTE = Dim(byte=1)
POWER = Dim(energy=1, time=-1)


class _Scalar:
    """A bare numeric literal: compatible with every dimension."""

    def __repr__(self) -> str:
        return "SCALAR"


SCALAR = _Scalar()

#: The abstract value of an expression: a known dimension, a polymorphic
#: numeric literal, or ``None`` for "unknown".
Value = Union[Dim, _Scalar, None]

#: Named dimensions of the model vocabulary; every quotient of two of
#: them is an acceptable dimension for a value to have (R007).
NAMED_DIMS = (DIMENSIONLESS, TIME, ENERGY, BYTE, POWER)
ACCEPTED_DIMS = frozenset(
    dim
    for numerator in NAMED_DIMS
    for denominator in NAMED_DIMS
    if (dim := numerator.div(denominator)) is not None
)

#: Unit-constant names -> dimension, wherever they are defined.
CONSTANT_DIMS: dict[str, Dim] = {
    "SECOND": TIME,
    "MILLISECOND": TIME,
    "MICROSECOND": TIME,
    "NANOSECOND": TIME,
    "JOULE": ENERGY,
    "NANOJOULE": ENERGY,
    "PICOJOULE": ENERGY,
    "GIB": BYTE,
    "MIB": BYTE,
    "KIB": BYTE,
    "PAGE_SIZE": BYTE,
    "ACCESS_SIZE": BYTE,
}

#: Annotation aliases (repro.units) -> dimension.
ALIAS_DIMS: dict[str, Dim] = {
    "Seconds": TIME,
    "Joules": ENERGY,
    "Watts": POWER,
    "Bytes": BYTE,
    "Count": DIMENSIONLESS,
    "Ratio": DIMENSIONLESS,
}

#: Builtins/functions through which a dimension passes unchanged.
_DIM_PRESERVING = {"min", "max", "sum", "abs", "round", "ceil", "floor", "float"}

#: Builtins whose result is a plain count.
_DIMENSIONLESS_CALLS = {"len"}


def annotation_dim(annotation: ast.expr | None) -> Dim | None:
    """The dimension named by a ``repro.units`` alias annotation."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return ALIAS_DIMS.get(annotation.id)
    if isinstance(annotation, ast.Attribute):
        return ALIAS_DIMS.get(annotation.attr)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return ALIAS_DIMS.get(annotation.value)
    return None


def collect_registry(files: list[SourceFile]) -> dict[str, Dim]:
    """Name -> dimension over all alias-annotated fields/returns.

    The registry is keyed by bare attribute/function name (the analysis
    has no type inference), so a name annotated with *different* aliases
    in different classes is dropped as ambiguous.
    """
    registry: dict[str, Dim] = {}
    ambiguous: set[str] = set()

    def learn(name: str, dim: Dim | None) -> None:
        if dim is None or name in ambiguous:
            return
        if name in registry and registry[name] != dim:
            del registry[name]
            ambiguous.add(name)
            return
        registry[name] = dim

    for src in files:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                learn(node.target.id, annotation_dim(node.annotation))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                learn(node.name, annotation_dim(node.returns))
    return registry


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------
#: Callback reporting a violation: (rule id, node, message).
Report = Callable[[str, ast.AST, str], None]

#: The dataflow state: local name -> abstract value.  A name *present*
#: with value ``None`` is a known local of unknown dimension (so it
#: shadows any registry entry of the same name); an *absent* name falls
#: back to the constant/registry tables.
Env = dict


class Evaluator:
    """Computes abstract values; optionally reports violations."""

    def __init__(self, registry: dict[str, Dim], report: Report | None = None) -> None:
        self.registry = registry
        self.report = report

    # ------------------------------------------------------------------
    def value_of(self, expr: ast.expr, env: Env) -> Value:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is not None:
            return method(expr, env)
        # Unknown construct: still visit child expressions so nested
        # arithmetic is checked, then give up on the result.
        self._visit_children(expr, env)
        return None

    def _visit_children(self, expr: ast.expr, env: Env) -> None:
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr) and not isinstance(child, ast.Lambda):
                self.value_of(child, env)

    # ------------------------------------------------------------------
    def _eval_Constant(self, expr: ast.Constant, env: Env) -> Value:
        if isinstance(expr.value, bool):
            return None
        if isinstance(expr.value, (int, float)):
            return SCALAR
        return None

    def _eval_Name(self, expr: ast.Name, env: Env) -> Value:
        if expr.id in env:
            return env[expr.id]
        if expr.id in CONSTANT_DIMS:
            return CONSTANT_DIMS[expr.id]
        return self.registry.get(expr.id)

    def _eval_Attribute(self, expr: ast.Attribute, env: Env) -> Value:
        self.value_of(expr.value, env)
        if expr.attr in CONSTANT_DIMS:
            return CONSTANT_DIMS[expr.attr]
        return self.registry.get(expr.attr)

    def _eval_UnaryOp(self, expr: ast.UnaryOp, env: Env) -> Value:
        value = self.value_of(expr.operand, env)
        if isinstance(expr.op, (ast.USub, ast.UAdd)):
            return value
        return None

    def _eval_BinOp(self, expr: ast.BinOp, env: Env) -> Value:
        left = self.value_of(expr.left, env)
        right = self.value_of(expr.right, env)
        op = expr.op
        if isinstance(op, ast.Mult):
            return self._multiply(left, right)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return self._divide(left, right)
        if isinstance(op, (ast.Add, ast.Sub)):
            return self.combine(expr, left, right, "add/subtract")
        if isinstance(op, ast.Mod):
            return self.combine(expr, left, right, None)
        if isinstance(op, ast.Pow):
            if isinstance(left, Dim) and isinstance(expr.right, ast.Constant) \
                    and isinstance(expr.right.value, int):
                return left.pow(expr.right.value)
            return SCALAR if isinstance(left, _Scalar) else None
        return None

    @staticmethod
    def _multiply(left: Value, right: Value) -> Value:
        if left is None or right is None:
            return None
        if isinstance(left, _Scalar):
            return right
        if isinstance(right, _Scalar):
            return left
        return left.mul(right)

    @staticmethod
    def _divide(left: Value, right: Value) -> Value:
        if left is None or right is None:
            return None
        if isinstance(right, _Scalar):
            return left
        if isinstance(left, _Scalar):
            return DIMENSIONLESS.div(right)
        return left.div(right)

    def combine(
        self, node: ast.AST, left: Value, right: Value, verb: str | None
    ) -> Value:
        """Join of operands that must share a dimension (+, -, %, compare)."""
        if isinstance(left, Dim) and isinstance(right, Dim) and left != right:
            if verb is not None and self.report is not None:
                self.report(
                    "R006",
                    node,
                    f"cannot {verb} incompatible dimensions "
                    f"{left} and {right}",
                )
            return None
        if isinstance(left, Dim):
            return left
        if isinstance(right, Dim):
            return right
        if isinstance(left, _Scalar) and isinstance(right, _Scalar):
            return SCALAR
        return None

    def _eval_Compare(self, expr: ast.Compare, env: Env) -> Value:
        operands = [expr.left, *expr.comparators]
        dimensional = all(
            isinstance(op, (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE))
            for op in expr.ops
        )
        values = [self.value_of(operand, env) for operand in operands]
        if dimensional:
            for first, second, node in zip(values, values[1:], operands[1:]):
                self.combine(node, first, second, "compare")
            return DIMENSIONLESS
        return None

    def _eval_BoolOp(self, expr: ast.BoolOp, env: Env) -> Value:
        values = [self.value_of(operand, env) for operand in expr.values]
        result = values[0]
        for value in values[1:]:
            if value != result:
                return None
        return result

    def _eval_IfExp(self, expr: ast.IfExp, env: Env) -> Value:
        self.value_of(expr.test, env)
        body = self.value_of(expr.body, env)
        orelse = self.value_of(expr.orelse, env)
        if body == orelse:
            return body
        if isinstance(body, _Scalar):
            return orelse
        if isinstance(orelse, _Scalar):
            return body
        return None

    def _eval_Call(self, expr: ast.Call, env: Env) -> Value:
        func = expr.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            self.value_of(func.value, env)
        arg_values = [self.value_of(arg, env) for arg in expr.args]
        for keyword in expr.keywords:
            value = self.value_of(keyword.value, env)
            if keyword.arg is not None:
                self.check_sink(
                    keyword.value,
                    value,
                    self.registry.get(keyword.arg),
                    f"keyword argument `{keyword.arg}`",
                )
        if name in self.registry:
            return self.registry[name]
        if name in _DIMENSIONLESS_CALLS:
            return DIMENSIONLESS
        if name in _DIM_PRESERVING:
            dims = {value for value in arg_values if isinstance(value, Dim)}
            if len(dims) == 1:
                return dims.pop()
            if not dims and arg_values and all(
                isinstance(value, _Scalar) for value in arg_values
            ):
                return SCALAR
        return None

    # ------------------------------------------------------------------
    def check_sink(
        self, node: ast.AST, value: Value, expected: Dim | None, where: str
    ) -> None:
        """R006 against a declared sink dimension; R007 against the vocabulary."""
        if self.report is None or not isinstance(value, Dim):
            return
        if expected is not None:
            if value != expected:
                self.report(
                    "R006",
                    node,
                    f"{where} expects {expected} but the value is {value}",
                )
        elif value not in ACCEPTED_DIMS:
            self.report(
                "R007",
                node,
                f"value has dimension {value}, which no sink in the "
                "model vocabulary accepts (likely a double unit "
                "conversion)",
            )


# ----------------------------------------------------------------------
# The dataflow analysis and rule driver
# ----------------------------------------------------------------------
def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


class UnitsAnalysis(FlowAnalysis[Env]):
    """Forward propagation of local-variable dimensions."""

    def __init__(
        self,
        registry: dict[str, Dim],
        params: Env,
        return_dim: Dim | None = None,
    ) -> None:
        self.registry = registry
        self.params = params
        self.return_dim = return_dim
        self.evaluator = Evaluator(registry)

    def initial(self) -> Env:
        return dict(self.params)

    def join(self, a: Env, b: Env) -> Env:
        # Keys stay bound (so locals keep shadowing the registry), but
        # disagreeing values degrade to explicit-unknown.
        return {
            key: a.get(key) if a.get(key) == b.get(key) else None
            for key in a.keys() | b.keys()
        }

    def transfer(self, stmt: ast.stmt, state: Env) -> Env:
        return self.apply(stmt, state, self.evaluator)

    def apply(self, stmt: ast.stmt, state: Env, evaluator: Evaluator) -> Env:
        """Transfer ``stmt`` with an explicit evaluator (for reporting)."""
        if isinstance(stmt, SCOPE_STMTS):
            return state
        heads = head_expressions(stmt)
        if heads:
            for expr in heads:
                evaluator.value_of(expr, state)
            bound: list[str] = []
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                bound = list(_target_names(stmt.target))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                bound = [
                    name
                    for item in stmt.items
                    if item.optional_vars is not None
                    for name in _target_names(item.optional_vars)
                ]
            if bound:
                state = dict(state)
                for name in bound:
                    state[name] = None
            return state
        if isinstance(stmt, ast.Assign):
            value = evaluator.value_of(stmt.value, state)
            state = dict(state)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state[target.id] = value
                    evaluator.check_sink(
                        stmt.value, value, None, f"assignment to `{target.id}`"
                    )
                elif isinstance(target, ast.Attribute):
                    evaluator.check_sink(
                        stmt.value,
                        value,
                        evaluator.registry.get(target.attr),
                        f"attribute `{target.attr}`",
                    )
                else:
                    for name in _target_names(target):
                        state[name] = None
            return state
        if isinstance(stmt, ast.AnnAssign):
            declared = annotation_dim(stmt.annotation)
            value: Value = None
            if stmt.value is not None:
                value = evaluator.value_of(stmt.value, state)
                evaluator.check_sink(stmt.value, value, declared, "annotated assignment")
            if isinstance(stmt.target, ast.Name):
                state = dict(state)
                state[stmt.target.id] = declared if declared is not None else value
            return state
        if isinstance(stmt, ast.AugAssign):
            value = evaluator.value_of(stmt.value, state)
            additive = isinstance(stmt.op, (ast.Add, ast.Sub))
            if isinstance(stmt.target, ast.Name):
                current = state.get(stmt.target.id)
                combined = (
                    evaluator.combine(stmt, current, value, "add/subtract")
                    if additive
                    else None
                )
                state = dict(state)
                state[stmt.target.id] = combined
            elif isinstance(stmt.target, ast.Attribute) and additive:
                evaluator.combine(
                    stmt,
                    evaluator.registry.get(stmt.target.attr),
                    value,
                    "add/subtract",
                )
            return state
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = evaluator.value_of(stmt.value, state)
                evaluator.check_sink(stmt.value, value, self.return_dim, "return value")
            return state
        # Any other simple statement: evaluate contained expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                evaluator.value_of(child, state)
        return state


def check_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    registry: dict[str, Dim],
) -> list[tuple[str, ast.AST, str]]:
    """Run the units analysis over one function; return its violations."""
    args = func.args
    params: Env = {
        arg.arg: annotation_dim(arg.annotation)
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    }
    for arg in (args.vararg, args.kwarg):
        if arg is not None:
            params[arg.arg] = None
    analysis = UnitsAnalysis(registry, params, annotation_dim(func.returns))
    cfg = build_cfg(func)
    try:
        solution = solve_forward(cfg, analysis)
    except FixpointDivergence:  # pragma: no cover - defensive
        return []
    violations: list[tuple[str, ast.AST, str]] = []
    seen: set[tuple[str, int, int]] = set()

    def report(rule_id: str, node: ast.AST, message: str) -> None:
        key = (rule_id, getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        if key not in seen:
            seen.add(key)
            violations.append((rule_id, node, message))

    reporter = Evaluator(registry, report)
    for block in cfg.reverse_postorder():
        state = solution.block_in[block.index]
        if state is None:
            continue
        for stmt in block.stmts:
            state = analysis.apply(stmt, state, reporter)
    return violations


def analyze_units(
    src: SourceFile, project: ProjectContext
) -> list[tuple[str, ast.AST, str]]:
    """All R006/R007 violations in one file (cached on the project)."""
    cache = project.scratch.setdefault("units", {})
    key = str(src.path)
    if key not in cache:
        registry = project.scratch.get("units_registry")
        if registry is None:
            registry = collect_registry(project.files)
            project.scratch["units_registry"] = registry
        violations: list[tuple[str, ast.AST, str]] = []
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                violations.extend(check_function(node, registry))
        cache[key] = violations
    return cache[key]


class _UnitsRuleBase:
    """Shared driver: run the units analysis, emit one rule's findings."""

    rule_id = "R000"
    title = ""
    aliases: tuple[str, ...] = ()

    def check(self, src: SourceFile, project: ProjectContext) -> Iterator[Finding]:
        for rule_id, node, message in analyze_units(src, project):
            if rule_id == self.rule_id:
                yield Finding(
                    path=str(src.path),
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    rule_id=rule_id,
                    message=message,
                )


class UnitsMismatchRule(_UnitsRuleBase):
    """R006: no arithmetic or sinks across incompatible dimensions."""

    rule_id = "R006"
    title = "no mixing of incompatible physical dimensions (time/energy/...)"


class UnitsSinkRule(_UnitsRuleBase):
    """R007: produced dimensions must stay in the model vocabulary."""

    rule_id = "R007"
    title = "arithmetic results stay within the model's dimension vocabulary"
