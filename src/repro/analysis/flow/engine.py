"""Generic worklist fixpoint solver over a CFG.

A :class:`FlowAnalysis` supplies the lattice (``join``) and semantics
(``transfer``); :func:`solve_forward` / :func:`solve_backward` iterate
block transfer functions to a fixpoint and return a :class:`Solution`
holding the converged per-block states.

Requirements for termination (the classic dataflow conditions):

* ``join`` is a join-semilattice operation over a finite-height domain;
* ``transfer`` is monotone in the state argument.

The engine represents unreachable blocks with ``None`` (bottom): their
states are never joined and their statements never visited, so
analyses need not model bottom themselves.  A safety valve raises
:class:`FixpointDivergence` if the iteration fails to settle — which a
correct analysis never triggers, but keeps a buggy lattice from
hanging the lint pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Generic, Iterator, TypeVar

from repro.analysis.flow.cfg import CFG, Block

S = TypeVar("S")

#: Each block may be re-processed at most this many times.
MAX_VISITS_PER_BLOCK = 1000


class FixpointDivergence(RuntimeError):
    """The worklist iteration exceeded its visit budget."""


class FlowAnalysis(Generic[S]):
    """One dataflow problem: boundary state, lattice join, transfer."""

    def initial(self) -> S:
        """State at the boundary (entry for forward, exit for backward)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, stmt: ast.stmt, state: S) -> S:
        """State after ``stmt`` given the state before it (or the reverse
        for a backward analysis).  Must not mutate ``state``."""
        raise NotImplementedError


@dataclass
class Solution(Generic[S]):
    """Converged per-block states.  ``None`` marks an unreachable block."""

    cfg: CFG
    analysis: FlowAnalysis[S]
    block_in: dict[int, S | None]
    block_out: dict[int, S | None]
    forward: bool

    def states_through(self, block: Block) -> Iterator[tuple[ast.stmt, S]]:
        """``(stmt, state-before-stmt)`` pairs along a reachable block.

        For a backward solution the "before" state is the one flowing
        into the statement against execution order.  Yields nothing for
        unreachable blocks.
        """
        state = self.block_in[block.index]
        if state is None:
            return
        stmts = block.stmts if self.forward else list(reversed(block.stmts))
        for stmt in stmts:
            yield stmt, state
            state = self.analysis.transfer(stmt, state)


def _solve(
    cfg: CFG,
    analysis: FlowAnalysis[S],
    boundary: int,
    edges_out: dict[int, list[int]],
    order: list[Block],
    forward: bool,
) -> Solution[S]:
    block_in: dict[int, S | None] = {b.index: None for b in cfg.blocks}
    block_out: dict[int, S | None] = {b.index: None for b in cfg.blocks}
    block_in[boundary] = analysis.initial()
    position = {block.index: i for i, block in enumerate(order)}
    pending = {boundary}
    visits = {b.index: 0 for b in cfg.blocks}
    while pending:
        index = min(pending, key=lambda i: position.get(i, len(position)))
        pending.discard(index)
        state = block_in[index]
        if state is None:
            continue
        visits[index] += 1
        if visits[index] > MAX_VISITS_PER_BLOCK:
            raise FixpointDivergence(
                f"block {index} visited more than {MAX_VISITS_PER_BLOCK} times"
            )
        stmts = cfg.blocks[index].stmts
        for stmt in stmts if forward else reversed(stmts):
            state = analysis.transfer(stmt, state)
        if state == block_out[index]:
            continue
        block_out[index] = state
        for succ in edges_out[index]:
            old = block_in[succ]
            new = state if old is None else analysis.join(old, state)
            if new != old:
                block_in[succ] = new
                pending.add(succ)
    return Solution(
        cfg=cfg,
        analysis=analysis,
        block_in=block_in,
        block_out=block_out,
        forward=forward,
    )


def solve_forward(cfg: CFG, analysis: FlowAnalysis[S]) -> Solution[S]:
    """Propagate states from ``cfg.entry`` along execution order."""
    return _solve(
        cfg,
        analysis,
        boundary=cfg.entry,
        edges_out={b.index: b.succs for b in cfg.blocks},
        order=cfg.reverse_postorder(),
        forward=True,
    )


def solve_backward(cfg: CFG, analysis: FlowAnalysis[S]) -> Solution[S]:
    """Propagate states from ``cfg.exit`` against execution order."""
    order = list(reversed(cfg.reverse_postorder()))
    return _solve(
        cfg,
        analysis,
        boundary=cfg.exit,
        edges_out={b.index: b.preds for b in cfg.blocks},
        order=order,
        forward=False,
    )
