"""Dataflow analysis framework for the project lint pass.

``flow`` hosts the intraprocedural machinery behind rules R006-R010:

* :mod:`repro.analysis.flow.cfg` — statement-level control-flow graphs
  with explicit exception edges;
* :mod:`repro.analysis.flow.engine` — the generic worklist fixpoint
  solver (forward and backward);
* :mod:`repro.analysis.flow.lattice` — shared lattice helpers;
* :mod:`repro.analysis.flow.units` — units-of-measure inference
  (R006/R007);
* :mod:`repro.analysis.flow.typestate` — page life-cycle protocol and
  accounting-order verification (R008/R009);
* :mod:`repro.analysis.flow.accounting` — the record_request contract
  on the fixpoint engine (R010, superseding R001).
"""

from repro.analysis.flow.accounting import AccountingRule, analyze_record_request_paths
from repro.analysis.flow.cfg import CFG, Block, build_cfg, head_expressions
from repro.analysis.flow.engine import (
    FixpointDivergence,
    FlowAnalysis,
    Solution,
    solve_backward,
    solve_forward,
)
from repro.analysis.flow.lattice import TOP, flat_join, map_join
from repro.analysis.flow.typestate import ProtocolRule, RecordedFirstRule
from repro.analysis.flow.units import UnitsMismatchRule, UnitsSinkRule

__all__ = [
    "CFG",
    "Block",
    "build_cfg",
    "head_expressions",
    "FlowAnalysis",
    "FixpointDivergence",
    "Solution",
    "solve_forward",
    "solve_backward",
    "TOP",
    "flat_join",
    "map_join",
    "AccountingRule",
    "analyze_record_request_paths",
    "ProtocolRule",
    "RecordedFirstRule",
    "UnitsMismatchRule",
    "UnitsSinkRule",
]
