"""Small lattice toolkit shared by the dataflow analyses.

All analyses in this package run over finite-height join-semilattices,
which (together with monotone transfer functions) is what guarantees
the worklist iteration in :mod:`repro.analysis.flow.engine` terminates.
Two conventions keep the state types plain Python values:

* The engine represents the bottom element (unreachable program point)
  as ``None`` itself, so analyses never model ``bottom`` explicitly.
* Environment-shaped states are plain ``dict``s where a *missing key
  means top* ("no information").  Joining two environments therefore
  intersects them, keeping only keys whose values agree (or whose
  value-lattice join is below top).  The key set can only shrink along
  a fixpoint iteration, which bounds the lattice height by the number
  of distinct keys times the height of the value lattice.
"""

from __future__ import annotations

from typing import Callable, Hashable, TypeVar

V = TypeVar("V")


class _Top:
    """Unique 'no information' element for flat value lattices."""

    _instance: "_Top | None" = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TOP"


#: The shared top element used by :func:`flat_join`.
TOP = _Top()


def flat_join(a: V | _Top, b: V | _Top) -> V | _Top:
    """Join in the flat lattice: equal values stay, anything else is TOP."""
    if a is TOP or b is TOP:
        return TOP
    return a if a == b else TOP


def map_join(
    a: dict[Hashable, V],
    b: dict[Hashable, V],
    value_join: Callable[[V, V], "V | _Top"] = flat_join,
) -> dict[Hashable, V]:
    """Pointwise join of missing-key-is-top environments.

    Keys present in only one map join with top and are dropped; keys
    whose values join to :data:`TOP` are dropped as well.
    """
    if a is b:
        return dict(a)
    out: dict[Hashable, V] = {}
    for key, value in a.items():
        if key in b:
            joined = value_join(value, b[key])
            if joined is not TOP:
                out[key] = joined  # type: ignore[assignment]
    return out
