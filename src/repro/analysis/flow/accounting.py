"""The accounting contract on the fixpoint engine (rules R010/R012).

Re-implements PR 1's R001 — every concrete policy ``access`` must call
``mm.record_request`` exactly once on every control-flow path — as a
forward dataflow problem instead of abstract path enumeration: the
state is the set of call totals (saturated at :data:`MANY`) reachable
at a program point, joined by set union.  Branch-heavy policies that
made the old per-path analysis fan out combinatorially now cost one
worklist pass over the CFG, because the state space is bounded by the
eight subsets of ``{0, 1, 2}`` regardless of path count.

Paths ending in ``raise`` are exempt (error paths need not account a
request), which the CFG expresses structurally: they drain into
``cfg.raise_exit``, and the rule only reads the state reaching
``cfg.exit``.
"""

from __future__ import annotations

import ast
import copy
from typing import Iterator

from repro.analysis.context import ProjectContext, SourceFile, is_abstract
from repro.analysis.findings import Finding, aliases_of
from repro.analysis.flow.cfg import SCOPE_STMTS, build_cfg, head_expressions
from repro.analysis.flow.engine import FlowAnalysis, solve_forward

#: Saturation value: "two or more calls".
MANY = 2

#: The state space: subsets of possible per-path call totals.
CountState = frozenset


def _calls_in(node: ast.AST) -> int:
    """``record_request`` call sites within one evaluated node.

    Does not descend into nested function/class definitions or lambdas
    (those bodies do not run inline).
    """
    count = 0
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name == "record_request":
            count += 1
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (*SCOPE_STMTS, ast.Lambda)):
            continue
        count += _calls_in(child)
    return count


def calls_at(stmt: ast.stmt) -> int:
    """``record_request`` calls the CFG attributes to ``stmt``'s block slot."""
    heads = head_expressions(stmt)
    if heads:
        return sum(_calls_in(expr) for expr in heads)
    if isinstance(stmt, SCOPE_STMTS):
        return 0
    return _calls_in(stmt)


class RecordRequestAnalysis(FlowAnalysis[CountState]):
    """Forward analysis over saturated call-count sets."""

    def initial(self) -> CountState:
        return frozenset({0})

    def join(self, a: CountState, b: CountState) -> CountState:
        return a | b

    def transfer(self, stmt: ast.stmt, state: CountState) -> CountState:
        extra = calls_at(stmt)
        if not extra:
            return state
        return frozenset(min(count + extra, MANY) for count in state)


def analyze_record_request_paths(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[int]:
    """Possible ``record_request`` totals over all paths through ``func``.

    Counts are saturated at 2 (= "two or more"); paths that end in
    ``raise`` are dropped.
    """
    cfg = build_cfg(func)
    solution = solve_forward(cfg, RecordRequestAnalysis())
    at_exit = solution.block_in[cfg.exit]
    return set(at_exit) if at_exit is not None else set()


class AccountingRule:
    """R010: ``access`` must charge the request exactly once per path.

    Supersedes R001 (the abstract path enumerator); ``--select R001``
    and ``# noqa: R001`` keep working through the alias.
    """

    rule_id = "R010"
    aliases = aliases_of("R010")
    title = "policy access() must call mm.record_request exactly once"

    def check(self, src: SourceFile, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not project.is_policy_class(node) or is_abstract(node):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "access":
                    yield from self._check_access(src, node, item)

    def _check_access(
        self, src: SourceFile, cls: ast.ClassDef, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        counts = analyze_record_request_paths(func)
        if counts == {1}:
            return
        label = f"{cls.name}.access"
        if counts == {0}:
            message = (
                f"{label} never calls mm.record_request; every "
                "request must be counted exactly once"
            )
        elif 0 in counts and any(value >= 1 for value in counts):
            message = (
                f"{label} skips mm.record_request on some "
                "control-flow paths; it must run exactly once "
                "on every path"
            )
        else:
            message = (
                f"{label} may call mm.record_request more than "
                "once on a path; requests must be counted "
                "exactly once"
            )
        yield Finding(
            path=str(src.path),
            line=func.lineno,
            col=func.col_offset + 1,
            rule_id=self.rule_id,
            message=message,
        )


# ----------------------------------------------------------------------
# R012 — the same contract for batched kernels
# ----------------------------------------------------------------------
#: Deferred per-request counters a batch kernel may tick instead of
#: calling ``record_request`` inline (they flush into the accounting
#: object after the loop).
_REQUEST_COUNTERS = frozenset({"read_requests", "write_requests"})

#: Calls that route one request through the accounting machinery:
#: ``record_request`` itself, or delegation to the per-request
#: ``access`` method (whose own accounting R010 already checks).
_ROUTING_CALLS = frozenset({"record_request", "access"})


def _events_in(node: ast.AST) -> int:
    """Accounting events within one evaluated node.

    An event is a routing call (:data:`_ROUTING_CALLS`) or a ``+=`` on
    a deferred request counter (:data:`_REQUEST_COUNTERS`), written as
    either a bare name or an attribute — kernels hoist both forms.
    Nested function/class definitions and lambdas are skipped (their
    bodies do not run inline).
    """
    count = 0
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name in _ROUTING_CALLS:
            count += 1
    elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
        target = node.target
        name = target.attr if isinstance(target, ast.Attribute) \
            else getattr(target, "id", "")
        if name in _REQUEST_COUNTERS:
            count += 1
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (*SCOPE_STMTS, ast.Lambda)):
            continue
        count += _events_in(child)
    return count


def events_at(stmt: ast.stmt) -> int:
    """Accounting events the CFG attributes to ``stmt``'s block slot."""
    heads = head_expressions(stmt)
    if heads:
        return sum(_events_in(expr) for expr in heads)
    if isinstance(stmt, SCOPE_STMTS):
        return 0
    return _events_in(stmt)


class RecordEventAnalysis(RecordRequestAnalysis):
    """Forward analysis over saturated accounting-event sets."""

    def transfer(self, stmt: ast.stmt, state: CountState) -> CountState:
        extra = events_at(stmt)
        if not extra:
            return state
        return frozenset(min(count + extra, MANY) for count in state)


class _LoopJumpRewriter(ast.NodeTransformer):
    """Turn a loop body's own ``continue``/``break`` into ``return``.

    The loop body is analysed as a standalone function (one iteration =
    one request), where ``continue`` and ``break`` both terminate the
    per-request path and must therefore reach the function exit.  Jumps
    belonging to *nested* loops keep their meaning: the rewriter does
    not descend into loop statements (or nested scopes).
    """

    def visit_For(self, node: ast.For) -> ast.AST:
        return node

    visit_AsyncFor = visit_For  # type: ignore[assignment]
    visit_While = visit_For  # type: ignore[assignment]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        return node

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> ast.AST:
        return node

    def visit_Continue(self, node: ast.Continue) -> ast.AST:
        return ast.copy_location(ast.Return(value=None), node)

    def visit_Break(self, node: ast.Break) -> ast.AST:
        return ast.copy_location(ast.Return(value=None), node)


def analyze_batch_loop_paths(loop: ast.For | ast.AsyncFor) -> set[int]:
    """Possible accounting-event totals over one iteration of ``loop``.

    Counts are saturated at 2 (= "two or more"); iteration paths that
    end in ``raise`` are dropped, exactly as R010 drops raising paths.
    """
    template = ast.parse("def _loop_body():\n    pass").body[0]
    assert isinstance(template, ast.FunctionDef)
    rewriter = _LoopJumpRewriter()
    template.body = [
        rewriter.visit(copy.deepcopy(stmt)) for stmt in loop.body
    ]
    cfg = build_cfg(template)
    solution = solve_forward(cfg, RecordEventAnalysis())
    at_exit = solution.block_in[cfg.exit]
    return set(at_exit) if at_exit is not None else set()


def _stmt_lists(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    """The statement blocks nested directly under ``stmt``."""
    for field_name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, field_name, None)
        if isinstance(block, list) and block \
                and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(stmt, "handlers", []):
        yield handler.body
    for case in getattr(stmt, "cases", []):
        yield case.body


def _loops_in(stmts: list[ast.stmt]) -> Iterator[ast.For | ast.AsyncFor]:
    """Every loop statement in ``stmts``, skipping nested scopes."""
    for stmt in stmts:
        if isinstance(stmt, SCOPE_STMTS):
            continue
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield stmt
        for block in _stmt_lists(stmt):
            yield from _loops_in(block)


class BatchAccountingRule:
    """R012: batched kernels charge each request exactly once.

    ``access_batch`` overrides may defer the manager's bookkeeping —
    tick local ``read_requests``/``write_requests`` counters on the
    inlined fast paths and flush them after the loop — so R010's
    "``record_request`` exactly once" cannot be checked literally.
    This rule checks the equivalent per-request property on the
    fixpoint engine: inside every *request loop* (a ``for`` whose
    iterator expression mentions a parameter of ``access_batch``),
    each iteration path performs exactly one accounting event — a
    ``record_request``/``access`` call or a ``+=`` on a deferred
    request counter.  Code outside the loops (the ``finally`` flush,
    the hoisting prologue, fallback delegation) is not constrained.
    """

    rule_id = "R012"
    aliases: tuple[str, ...] = ()
    title = "batched access_batch kernels account each request once"

    def check(self, src: SourceFile,
              project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not project.is_policy_class(node) or is_abstract(node):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) \
                        and item.name == "access_batch":
                    yield from self._check_batch(src, node, item)

    def _check_batch(
        self, src: SourceFile, cls: ast.ClassDef, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        arguments = func.args
        params = {
            arg.arg
            for arg in (*arguments.posonlyargs, *arguments.args,
                        *arguments.kwonlyargs)
        }
        params.discard("self")
        label = f"{cls.name}.access_batch"
        for loop in _loops_in(func.body):
            if not any(
                isinstance(name, ast.Name) and name.id in params
                for name in ast.walk(loop.iter)
            ):
                continue
            counts = analyze_batch_loop_paths(loop)
            if counts == {1}:
                continue
            if counts == {0}:
                message = (
                    f"request loop in {label} never accounts a request "
                    "(no record_request/access call or request-counter "
                    "increment on any iteration path)"
                )
            elif 0 in counts and any(value >= 1 for value in counts):
                message = (
                    f"request loop in {label} skips accounting on some "
                    "iteration paths; each request must be charged "
                    "exactly once"
                )
            else:
                message = (
                    f"request loop in {label} may account a request "
                    "more than once on an iteration path"
                )
            yield Finding(
                path=str(src.path),
                line=loop.lineno,
                col=loop.col_offset + 1,
                rule_id=self.rule_id,
                message=message,
            )
