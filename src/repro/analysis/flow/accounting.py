"""The accounting contract on the fixpoint engine (rule R010).

Re-implements PR 1's R001 — every concrete policy ``access`` must call
``mm.record_request`` exactly once on every control-flow path — as a
forward dataflow problem instead of abstract path enumeration: the
state is the set of call totals (saturated at :data:`MANY`) reachable
at a program point, joined by set union.  Branch-heavy policies that
made the old per-path analysis fan out combinatorially now cost one
worklist pass over the CFG, because the state space is bounded by the
eight subsets of ``{0, 1, 2}`` regardless of path count.

Paths ending in ``raise`` are exempt (error paths need not account a
request), which the CFG expresses structurally: they drain into
``cfg.raise_exit``, and the rule only reads the state reaching
``cfg.exit``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext, SourceFile, is_abstract
from repro.analysis.findings import Finding
from repro.analysis.flow.cfg import SCOPE_STMTS, build_cfg, head_expressions
from repro.analysis.flow.engine import FlowAnalysis, solve_forward

#: Saturation value: "two or more calls".
MANY = 2

#: The state space: subsets of possible per-path call totals.
CountState = frozenset


def _calls_in(node: ast.AST) -> int:
    """``record_request`` call sites within one evaluated node.

    Does not descend into nested function/class definitions or lambdas
    (those bodies do not run inline).
    """
    count = 0
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name == "record_request":
            count += 1
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (*SCOPE_STMTS, ast.Lambda)):
            continue
        count += _calls_in(child)
    return count


def calls_at(stmt: ast.stmt) -> int:
    """``record_request`` calls the CFG attributes to ``stmt``'s block slot."""
    heads = head_expressions(stmt)
    if heads:
        return sum(_calls_in(expr) for expr in heads)
    if isinstance(stmt, SCOPE_STMTS):
        return 0
    return _calls_in(stmt)


class RecordRequestAnalysis(FlowAnalysis[CountState]):
    """Forward analysis over saturated call-count sets."""

    def initial(self) -> CountState:
        return frozenset({0})

    def join(self, a: CountState, b: CountState) -> CountState:
        return a | b

    def transfer(self, stmt: ast.stmt, state: CountState) -> CountState:
        extra = calls_at(stmt)
        if not extra:
            return state
        return frozenset(min(count + extra, MANY) for count in state)


def analyze_record_request_paths(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[int]:
    """Possible ``record_request`` totals over all paths through ``func``.

    Counts are saturated at 2 (= "two or more"); paths that end in
    ``raise`` are dropped.
    """
    cfg = build_cfg(func)
    solution = solve_forward(cfg, RecordRequestAnalysis())
    at_exit = solution.block_in[cfg.exit]
    return set(at_exit) if at_exit is not None else set()


class AccountingRule:
    """R010: ``access`` must charge the request exactly once per path.

    Supersedes R001 (the abstract path enumerator); ``--select R001``
    and ``# noqa: R001`` keep working through the alias.
    """

    rule_id = "R010"
    aliases = ("R001",)
    title = "policy access() must call mm.record_request exactly once"

    def check(self, src: SourceFile, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not project.is_policy_class(node) or is_abstract(node):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "access":
                    yield from self._check_access(src, node, item)

    def _check_access(
        self, src: SourceFile, cls: ast.ClassDef, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        counts = analyze_record_request_paths(func)
        if counts == {1}:
            return
        label = f"{cls.name}.access"
        if counts == {0}:
            message = (
                f"{label} never calls mm.record_request; every "
                "request must be counted exactly once"
            )
        elif 0 in counts and any(value >= 1 for value in counts):
            message = (
                f"{label} skips mm.record_request on some "
                "control-flow paths; it must run exactly once "
                "on every path"
            )
        else:
            message = (
                f"{label} may call mm.record_request more than "
                "once on a path; requests must be counted "
                "exactly once"
            )
        yield Finding(
            path=str(src.path),
            line=func.lineno,
            col=func.col_offset + 1,
            rule_id=self.rule_id,
            message=message,
        )
