"""The deep lint tier: rules R013-R015 over the call graph.

These rules guard the three places where the repo's concurrency and
caching machinery can corrupt results silently instead of crashing:

* **R013 (worker purity)** — functions reachable from code the
  :class:`ParallelExecutor` ships to pool workers (the submitted
  callables, ``RunSpec.execute``, and policy ``access``/
  ``access_batch`` bodies) must not mutate module-level state or
  closed-over cells: after fork/spawn each worker writes a private
  copy, so such writes are lost, divergent, or racy depending on the
  start method.  Intentional per-process caches opt out by marking the
  *definition* line ``# repro: worker-local``.
* **R014 (sync-before-emit)** — a batch kernel that defers request
  accounting in local counters must fold the outstanding debt into
  ``bus.clock`` before any call that can emit an event, and before
  leaving the kernel (``return``/``raise``/fall-through), otherwise
  event indexes drift from the per-request replay path.  Checked as a
  forward may-have-debt dataflow over the kernel CFG; calls are
  classified as emitting via the transitive summaries.
* **R015 (digest stability)** — every type reachable from ``RunSpec``
  identity fields must be frozen with a deterministic ``to_dict``, and
  the digest's ``json.dumps`` must sort keys, so the content-addressed
  result cache can never alias two different configurations or split
  one across keys.

All three share one project-wide analysis (call graph + summaries)
memoised in ``project.scratch``, so a ``--deep`` run pays for it once
regardless of file count.
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.context import ProjectContext, SourceFile, is_abstract
from repro.analysis.findings import Finding, aliases_of
from repro.analysis.flow.accounting import _REQUEST_COUNTERS
from repro.analysis.flow.cfg import (
    SCOPE_STMTS,
    build_cfg,
    head_expressions,
)
from repro.analysis.flow.engine import FlowAnalysis, solve_forward
from repro.analysis.interproc.callgraph import (
    WORKER_LOCAL_MARKER,
    CallGraph,
    FunctionInfo,
    build_aliases,
    short_chain,
)
from repro.analysis.interproc.summaries import (
    EMIT_METHODS,
    ProjectSummaries,
    bus_receiver_names,
    summarize,
)

#: Bound on reachability for the worker-purity closure.
WORKER_DEPTH = 16

#: Field types that can never sit on a digest-stable identity.
_UNSTABLE_TYPES = frozenset({
    "list", "dict", "set", "bytearray", "List", "Dict", "Set",
    "MutableMapping", "MutableSequence", "MutableSet", "defaultdict",
    "Counter", "deque", "ndarray", "array",
})

#: Base classes that make a type identity-safe without a dataclass
#: decorator (value-semantics builtins).
_STABLE_BASES = frozenset({
    "Enum", "IntEnum", "StrEnum", "IntFlag", "Flag", "NamedTuple",
    "tuple", "str", "int", "float", "frozenset", "bytes",
})


@dataclass
class _InterprocAnalysis:
    """The shared per-run project analysis (graph + summaries)."""

    graph: CallGraph
    summaries: ProjectSummaries
    seeds: dict[str, str] = field(default_factory=dict)
    reachable: dict[str, tuple[str, ...]] = field(default_factory=dict)


def project_analysis(project: ProjectContext) -> _InterprocAnalysis:
    """Build (or reuse) the call graph and summaries for this run."""
    cached = project.scratch.get("interproc")
    if isinstance(cached, _InterprocAnalysis):
        return cached
    graph = CallGraph.build(project.files)
    summaries = summarize(graph, project.files)
    analysis = _InterprocAnalysis(graph=graph, summaries=summaries)
    analysis.seeds = _worker_seeds(graph, project)
    analysis.reachable = graph.reachable(
        list(analysis.seeds), max_depth=WORKER_DEPTH)
    project.scratch["interproc"] = analysis
    return analysis


def _worker_seeds(
    graph: CallGraph, project: ProjectContext
) -> dict[str, str]:
    """Worker entry points: qname -> why it runs in a worker."""
    seeds: dict[str, str] = {}
    for qname, site in graph.pool_submissions().items():
        seeds[qname] = f"submitted to a worker pool at {site}"
    execute = graph.class_methods.get("RunSpec", {}).get("execute")
    if execute is not None:
        seeds.setdefault(execute, "RunSpec.execute runs inside workers")
    for cls_name in project.policy_classes:
        methods = graph.class_methods.get(cls_name, {})
        for method in ("access", "access_batch"):
            qname = methods.get(method)
            if qname is not None:
                seeds.setdefault(
                    qname, f"policy {method} bodies run inside workers")
    return seeds


def _short_chain(graph: CallGraph, chain: tuple[str, ...]) -> str:
    return short_chain(graph, chain)


class WorkerPurityRule:
    """R013: worker-reachable code must not mutate shared module state."""

    rule_id = "R013"
    aliases = aliases_of("R013")
    title = "worker-reachable code must not mutate shared module state"

    def check(
        self, src: SourceFile, project: ProjectContext
    ) -> Iterator[Finding]:
        analysis = project_analysis(project)
        graph = analysis.graph
        by_module = {
            index.module: index for index in graph.indexes.values()
        }
        path = str(src.path)
        seen: set[tuple[int, str]] = set()
        for qname, chain in sorted(analysis.reachable.items()):
            info = graph.functions.get(qname)
            if info is None or info.path != path:
                continue
            effects = analysis.summaries.direct.get(qname)
            if effects is None:
                continue
            for site in effects.sites:
                if site.marked:
                    continue
                if site.kind == "global":
                    module, _, name = site.slot.partition(":")
                    owner = by_module.get(module)
                    if owner is not None and name in owner.worker_local:
                        continue
                    what = f"module-level `{site.name}`"
                    advice = (
                        "each pool worker mutates a private copy; move the "
                        "state into the task payload/result, or mark the "
                        f"definition `# {WORKER_LOCAL_MARKER}` if it is an "
                        "intentional per-process cache"
                    )
                elif site.kind == "cell":
                    # A cell is only a cross-process hazard when the
                    # closure was created *outside* the worker call tree
                    # (the owning scope ran in the parent); accumulator
                    # closures built inside a worker mutate worker-local
                    # frames and are fine.
                    owner = site.slot.rpartition(":")[0]
                    if owner in analysis.reachable:
                        continue
                    what = f"closed-over `{site.name}`"
                    advice = (
                        "the closure cell lives in the parent process and "
                        "is not shared back from workers; return the data "
                        "instead"
                    )
                else:  # pragma: no cover - only two kinds exist
                    continue
                key = (site.line, site.slot)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    path=path,
                    line=site.line,
                    col=1,
                    rule_id=self.rule_id,
                    message=(
                        f"{qname} mutates {what} but is worker-reachable "
                        f"({analysis.seeds.get(chain[0], 'worker entry')}; "
                        f"chain: {_short_chain(graph, chain)}); {advice}"
                    ),
                )


# ----------------------------------------------------------------------
# R014 — sync-before-emit
# ----------------------------------------------------------------------
class _BusGuardSplicer(ast.NodeTransformer):
    """Inline ``if <bus> is not None:`` guards.

    The kernels only touch the bus under such guards; analysing the
    bus-attached world means treating the guarded block as always
    executed.  Only guards with no ``else`` are spliced.
    """

    def __init__(self, bus_names: frozenset[str]) -> None:
        self.bus_names = bus_names

    def visit_If(self, node: ast.If) -> ast.AST | list[ast.stmt]:
        self.generic_visit(node)
        test = node.test
        if (
            not node.orelse
            and isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id in self.bus_names
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return list(node.body)
        return node


def _is_flush(stmt: ast.stmt, bus_names: frozenset[str]) -> bool:
    """A ``bus.clock += ...`` fold of the deferred counters."""
    return (
        isinstance(stmt, ast.AugAssign)
        and isinstance(stmt.op, ast.Add)
        and isinstance(stmt.target, ast.Attribute)
        and stmt.target.attr == "clock"
        and isinstance(stmt.target.value, ast.Name)
        and stmt.target.value.id in bus_names
    )


def _is_debt(stmt: ast.stmt) -> bool:
    """A deferred request-counter tick (``read_requests += 1``)."""
    return (
        isinstance(stmt, ast.AugAssign)
        and isinstance(stmt.op, ast.Add)
        and isinstance(stmt.target, ast.Name)
        and stmt.target.id in _REQUEST_COUNTERS
    )


def _inline_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Calls evaluated within ``node`` (no nested scopes, no lambdas)."""
    if isinstance(node, ast.Call):
        yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (*SCOPE_STMTS, ast.Lambda)):
            continue
        yield from _inline_calls(child)


def _calls_at(stmt: ast.stmt) -> Iterator[ast.Call]:
    heads = head_expressions(stmt)
    if heads:
        for expr in heads:
            yield from _inline_calls(expr)
        return
    if isinstance(stmt, SCOPE_STMTS):
        return
    yield from _inline_calls(stmt)


class _DebtAnalysis(FlowAnalysis[bool]):
    """Forward may-have-unflushed-debt over a kernel CFG."""

    def __init__(self, bus_names: frozenset[str]) -> None:
        self.bus_names = bus_names

    def initial(self) -> bool:
        return False

    def join(self, a: bool, b: bool) -> bool:
        return a or b

    def transfer(self, stmt: ast.stmt, state: bool) -> bool:
        if _is_flush(stmt, self.bus_names):
            return False
        if _is_debt(stmt):
            return True
        return state


def _covered_exits(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    bus_names: frozenset[str],
) -> set[int]:
    """``id``s of Return/Raise nodes under a flushing ``finally``."""
    covered: set[int] = set()

    def flushes(stmts: list[ast.stmt]) -> bool:
        return any(
            _is_flush(inner, bus_names)
            for stmt in stmts
            for inner in ast.walk(stmt)
            if isinstance(inner, ast.AugAssign)
        )

    for node in ast.walk(func):
        if isinstance(node, ast.Try) and node.finalbody \
                and flushes(node.finalbody):
            for child in ast.walk(node):
                if isinstance(child, (ast.Return, ast.Raise)):
                    covered.add(id(child))
    return covered


class SyncBeforeEmitRule:
    """R014: kernels fold deferred counters before emitting callouts."""

    rule_id = "R014"
    aliases = aliases_of("R014")
    title = "batch kernels flush request debt before event callouts"

    def check(
        self, src: SourceFile, project: ProjectContext
    ) -> Iterator[Finding]:
        analysis = project_analysis(project)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not project.is_policy_class(node) or is_abstract(node):
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) \
                        and item.name == "access_batch":
                    yield from self._check_kernel(
                        src, node, item, analysis)

    def _check_kernel(
        self,
        src: SourceFile,
        cls: ast.ClassDef,
        func: ast.FunctionDef,
        analysis: _InterprocAnalysis,
    ) -> Iterator[Finding]:
        has_debt = any(
            _is_debt(stmt)
            for stmt in ast.walk(func)
            if isinstance(stmt, ast.AugAssign)
        )
        if not has_debt:
            return
        graph = analysis.graph
        index = graph.indexes.get(str(src.path))
        module = index.module if index is not None else src.path.stem
        info = graph.functions.get(f"{module}.{cls.name}.{func.name}")
        bus_names = bus_receiver_names(func)
        aliases = build_aliases(func)
        label = f"{cls.name}.access_batch"

        working = copy.deepcopy(func)
        working = ast.fix_missing_locations(
            _BusGuardSplicer(bus_names).visit(working))
        covered = _covered_exits(working, bus_names)
        cfg = build_cfg(working)
        solution = solve_forward(cfg, _DebtAnalysis(bus_names))

        emitted: set[tuple[int, str]] = set()

        def finding(line: int, message: str) -> Iterator[Finding]:
            key = (line, message)
            if key not in emitted:
                emitted.add(key)
                yield Finding(
                    path=str(src.path), line=line, col=1,
                    rule_id=self.rule_id, message=message,
                )

        for block in cfg.blocks:
            for stmt, state in solution.states_through(block):
                if not state:
                    continue
                if isinstance(stmt, (ast.Return, ast.Raise)) \
                        and id(stmt) not in covered:
                    verb = "return" if isinstance(stmt, ast.Return) \
                        else "raise"
                    yield from finding(stmt.lineno, (
                        f"{label} may {verb} with unflushed request debt "
                        "(no covering finally that folds the deferred "
                        "counters into bus.clock)"
                    ))
                    continue
                for call in _calls_at(stmt):
                    if self._is_callout(call, info, aliases,
                                        bus_names, analysis):
                        yield from finding(call.lineno, (
                            f"{label} calls event-emitting code with "
                            "unflushed request debt; fold the deferred "
                            "read/write counters into bus.clock before "
                            "the callout"
                        ))
        # Fall-through completion: predecessors of the exit block that
        # do not end in an (already reported) explicit return.
        for pred in cfg.blocks[cfg.exit].preds:
            block = cfg.blocks[pred]
            if block.stmts and isinstance(block.stmts[-1], ast.Return):
                continue
            if solution.block_out.get(pred):
                last = func.body[-1]
                line = getattr(last, "end_lineno", None) or last.lineno
                yield from finding(line, (
                    f"{label} can finish with unflushed request debt; "
                    "fold the deferred counters into bus.clock before "
                    "the kernel ends (a finally block keeps raise paths "
                    "covered too)"
                ))

    def _is_callout(
        self,
        call: ast.Call,
        info: FunctionInfo | None,
        aliases: dict[str, tuple[str, str]],
        bus_names: frozenset[str],
        analysis: _InterprocAnalysis,
    ) -> bool:
        func = call.func
        # Direct emission on the bus itself (works even when the bus
        # class is outside the linted file set).
        if isinstance(func, ast.Attribute) \
                and func.attr in EMIT_METHODS \
                and isinstance(func.value, ast.Name) \
                and func.value.id in bus_names:
            return True
        if info is None:
            return False
        targets, _ = analysis.graph.resolve_call(info, call, aliases)
        transitive = analysis.summaries.transitive
        return any(
            transitive.get(qname) is not None
            and transitive[qname].emits_events
            for qname in targets
        )


# ----------------------------------------------------------------------
# R015 — digest stability
# ----------------------------------------------------------------------
def _annotation_names(expr: ast.expr) -> Iterator[tuple[str, int]]:
    """Type names mentioned by an annotation expression, with lines."""
    if isinstance(expr, ast.Name):
        yield expr.id, expr.lineno
    elif isinstance(expr, ast.Attribute):
        yield expr.attr, expr.lineno
    elif isinstance(expr, ast.Constant):
        if expr.value is None:
            yield "None", expr.lineno
        elif isinstance(expr.value, str):
            try:
                parsed = ast.parse(expr.value, mode="eval")
            except SyntaxError:
                return
            for name, _ in _annotation_names(parsed.body):
                yield name, expr.lineno
    elif isinstance(expr, ast.Subscript):
        yield from _annotation_names(expr.value)
        yield from _annotation_names(expr.slice)
    elif isinstance(expr, ast.BinOp):
        yield from _annotation_names(expr.left)
        yield from _annotation_names(expr.right)
    elif isinstance(expr, (ast.Tuple, ast.List)):
        for elt in expr.elts:
            yield from _annotation_names(elt)


def _is_frozen_dataclass(node: ast.ClassDef) -> tuple[bool, bool]:
    """``(is_dataclass, is_frozen)`` from the decorator list."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = target.attr if isinstance(target, ast.Attribute) \
            else getattr(target, "id", "")
        if name != "dataclass":
            continue
        if not isinstance(decorator, ast.Call):
            return True, False
        for keyword in decorator.keywords:
            if keyword.arg == "frozen" \
                    and isinstance(keyword.value, ast.Constant) \
                    and keyword.value.value is True:
                return True, True
        return True, False
    return False, False


def _deterministic_return(value: ast.expr | None) -> bool:
    """A return value whose JSON serialisation order is static."""
    if value is None:
        return False
    if isinstance(value, ast.Dict):
        return all(
            isinstance(key, ast.Constant) for key in value.keys
        )
    if isinstance(value, ast.Call):
        target = value.func
        name = target.attr if isinstance(target, ast.Attribute) \
            else getattr(target, "id", "")
        if name == "dict" and value.args \
                and isinstance(value.args[0], ast.Call):
            inner = value.args[0].func
            inner_name = inner.attr if isinstance(inner, ast.Attribute) \
                else getattr(inner, "id", "")
            return inner_name == "sorted"
        # Delegation (e.g. ``asdict``-free handwritten helpers) is
        # checked at the callee when it is also reachable.
        return name == "to_dict"
    return False


class DigestStabilityRule:
    """R015: everything in RunSpec's identity is frozen + deterministic."""

    rule_id = "R015"
    aliases = aliases_of("R015")
    title = "RunSpec identity types are frozen with stable to_dict order"

    def check(
        self, src: SourceFile, project: ProjectContext
    ) -> Iterator[Finding]:
        findings = project.scratch.get("interproc.digest")
        if findings is None:
            findings = self._analyze(project)
            project.scratch["interproc.digest"] = findings
        path = str(src.path)
        for finding in findings:
            if finding.path == path:
                yield finding

    # -- project-wide pass ---------------------------------------------
    def _analyze(self, project: ProjectContext) -> list[Finding]:
        classes: dict[str, tuple[ast.ClassDef, SourceFile]] = {}
        type_aliases: dict[str, tuple[ast.expr, SourceFile]] = {}
        for src in project.files:
            for stmt in src.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    classes.setdefault(stmt.name, (stmt, src))
                elif isinstance(stmt, ast.Assign) \
                        and len(stmt.targets) == 1 \
                        and isinstance(stmt.targets[0], ast.Name) \
                        and isinstance(stmt.value, (ast.Subscript,
                                                    ast.BinOp, ast.Name,
                                                    ast.Attribute)):
                    type_aliases.setdefault(
                        stmt.targets[0].id, (stmt.value, src))
        root = classes.get("RunSpec")
        if root is None:
            return []
        findings: list[Finding] = []
        visited: set[str] = set()
        self._check_class(
            "RunSpec", root[0], root[1], classes, type_aliases,
            visited, findings, is_root=True,
        )
        return sorted(findings)

    def _check_class(
        self,
        name: str,
        node: ast.ClassDef,
        src: SourceFile,
        classes: dict[str, tuple[ast.ClassDef, SourceFile]],
        type_aliases: dict[str, tuple[ast.expr, SourceFile]],
        visited: set[str],
        findings: list[Finding],
        is_root: bool = False,
    ) -> None:
        if name in visited:
            return
        visited.add(name)
        path = str(src.path)
        bases = {
            base.id if isinstance(base, ast.Name) else base.attr
            for base in node.bases
            if isinstance(base, (ast.Name, ast.Attribute))
        }
        value_semantics = bool(bases & _STABLE_BASES)
        is_dataclass, is_frozen = _is_frozen_dataclass(node)
        if not value_semantics and not (is_dataclass and is_frozen):
            role = "RunSpec" if is_root else (
                f"`{name}` (reachable from RunSpec identity fields)"
            )
            findings.append(Finding(
                path=path, line=node.lineno, col=node.col_offset + 1,
                rule_id=self.rule_id,
                message=(
                    f"{role} must be a frozen dataclass (or value type): "
                    "an unfrozen identity type lets cache digests drift "
                    "after construction"
                ),
            ))
        if is_dataclass:
            self._check_to_dict(name, node, path, findings)
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                self._check_annotation(
                    name, stmt, src, classes, type_aliases, visited,
                    findings,
                )
        if is_root:
            self._check_digest(node, path, findings)

    def _check_annotation(
        self,
        owner: str,
        stmt: ast.AnnAssign,
        src: SourceFile,
        classes: dict[str, tuple[ast.ClassDef, SourceFile]],
        type_aliases: dict[str, tuple[ast.expr, SourceFile]],
        visited: set[str],
        findings: list[Finding],
        depth: int = 0,
    ) -> None:
        if depth > 8:
            return
        field_name = stmt.target.id \
            if isinstance(stmt.target, ast.Name) else "<field>"
        for type_name, line in _annotation_names(stmt.annotation):
            if type_name in _UNSTABLE_TYPES:
                findings.append(Finding(
                    path=str(src.path), line=line, col=1,
                    rule_id=self.rule_id,
                    message=(
                        f"{owner}.{field_name} uses mutable/unordered "
                        f"type `{type_name}` in an identity field; use "
                        "tuples/frozen types so the digest cannot drift"
                    ),
                ))
            elif type_name in classes:
                cls_node, cls_src = classes[type_name]
                self._check_class(
                    type_name, cls_node, cls_src, classes, type_aliases,
                    visited, findings,
                )
            elif type_name in type_aliases:
                alias_expr, alias_src = type_aliases[type_name]
                if type_name not in visited:
                    visited.add(type_name)
                    for inner, inner_line in _annotation_names(alias_expr):
                        if inner in _UNSTABLE_TYPES:
                            findings.append(Finding(
                                path=str(alias_src.path), line=inner_line,
                                col=1, rule_id=self.rule_id,
                                message=(
                                    f"type alias `{type_name}` (used by "
                                    f"{owner}.{field_name}) contains "
                                    f"mutable type `{inner}`"
                                ),
                            ))
                        elif inner in classes:
                            cls_node, cls_src = classes[inner]
                            self._check_class(
                                inner, cls_node, cls_src, classes,
                                type_aliases, visited, findings,
                            )

    def _check_to_dict(
        self,
        name: str,
        node: ast.ClassDef,
        path: str,
        findings: list[Finding],
    ) -> None:
        to_dict = None
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) \
                    and stmt.name == "to_dict":
                to_dict = stmt
                break
        if to_dict is None:
            findings.append(Finding(
                path=path, line=node.lineno, col=node.col_offset + 1,
                rule_id=self.rule_id,
                message=(
                    f"`{name}` is serialised into the RunSpec digest but "
                    "defines no to_dict; add one returning a "
                    "constant-keyed dict literal"
                ),
            ))
            return
        for inner in ast.walk(to_dict):
            if isinstance(inner, ast.Return) \
                    and not _deterministic_return(inner.value):
                findings.append(Finding(
                    path=path, line=inner.lineno, col=1,
                    rule_id=self.rule_id,
                    message=(
                        f"{name}.to_dict must return a constant-keyed "
                        "dict literal (or dict(sorted(...))) so digest "
                        "key order is static"
                    ),
                ))

    def _check_digest(
        self, node: ast.ClassDef, path: str, findings: list[Finding]
    ) -> None:
        for method in node.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            for inner in ast.walk(method):
                if not isinstance(inner, ast.Call):
                    continue
                target = inner.func
                name = target.attr if isinstance(target, ast.Attribute) \
                    else getattr(target, "id", "")
                if name != "dumps":
                    continue
                sort_keys = any(
                    keyword.arg == "sort_keys"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in inner.keywords
                )
                if not sort_keys:
                    findings.append(Finding(
                        path=path, line=inner.lineno, col=1,
                        rule_id=self.rule_id,
                        message=(
                            f"json.dumps in RunSpec.{method.name} must "
                            "pass sort_keys=True; unsorted keys make "
                            "the digest depend on dict insertion order"
                        ),
                    ))


#: The ``--deep`` tier, in rule-id order.
DEEP_RULES: tuple[WorkerPurityRule, SyncBeforeEmitRule,
                  DigestStabilityRule] = (
    WorkerPurityRule(),
    SyncBeforeEmitRule(),
    DigestStabilityRule(),
)
