"""Interprocedural analysis: call graph, summaries, deep lint rules."""

from repro.analysis.interproc.callgraph import (
    DEFAULT_DEPTH,
    WORKER_LOCAL_MARKER,
    CallGraph,
    FunctionInfo,
    ModuleIndex,
    build_module_index,
)
from repro.analysis.interproc.interproc_rules import (
    DEEP_RULES,
    DigestStabilityRule,
    SyncBeforeEmitRule,
    WorkerPurityRule,
)
from repro.analysis.interproc.summaries import (
    DirectEffects,
    MutationSite,
    ProjectSummaries,
    Summary,
    summarize,
)

__all__ = [
    "DEFAULT_DEPTH",
    "WORKER_LOCAL_MARKER",
    "CallGraph",
    "FunctionInfo",
    "ModuleIndex",
    "build_module_index",
    "DEEP_RULES",
    "DigestStabilityRule",
    "SyncBeforeEmitRule",
    "WorkerPurityRule",
    "DirectEffects",
    "MutationSite",
    "ProjectSummaries",
    "Summary",
    "summarize",
]
