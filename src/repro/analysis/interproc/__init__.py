"""Interprocedural analysis: call graph, summaries, deep lint rules."""

from repro.analysis.interproc.callgraph import (
    COLD_MARKER,
    DEFAULT_DEPTH,
    HOT_DRIVE_METHODS,
    HOT_KERNEL_FUNCTIONS,
    WORKER_LOCAL_MARKER,
    CallGraph,
    FunctionInfo,
    ModuleIndex,
    build_module_index,
    short_chain,
)
from repro.analysis.interproc.interproc_rules import (
    DEEP_RULES,
    DigestStabilityRule,
    SyncBeforeEmitRule,
    WorkerPurityRule,
)
from repro.analysis.interproc.summaries import (
    DirectEffects,
    MutationSite,
    ProjectSummaries,
    Summary,
    summarize,
)

__all__ = [
    "COLD_MARKER",
    "DEFAULT_DEPTH",
    "HOT_DRIVE_METHODS",
    "HOT_KERNEL_FUNCTIONS",
    "short_chain",
    "WORKER_LOCAL_MARKER",
    "CallGraph",
    "FunctionInfo",
    "ModuleIndex",
    "build_module_index",
    "DEEP_RULES",
    "DigestStabilityRule",
    "SyncBeforeEmitRule",
    "WorkerPurityRule",
    "DirectEffects",
    "MutationSite",
    "ProjectSummaries",
    "Summary",
    "summarize",
]
