"""Project-wide call graph for the interprocedural lint tier.

The intraprocedural engine (:mod:`repro.analysis.flow`) answers "what
happens on the paths through *this* function"; the deep rules
(R013-R015) need the complementary question — "what does calling this
function *do*, transitively".  This module builds the project call
graph they walk:

* a :class:`ModuleIndex` per file — its functions (including nested
  ones), classes, module-level globals and import aliases — memoised
  on the file's ``(mtime_ns, size)`` stat signature, the same scheme
  the executor's ``code_version`` uses, so repeated ``--deep`` runs
  re-index only files that changed;
* name resolution from call sites to function definitions:
  module-level functions by name and import alias, constructors to
  ``__init__``/``__post_init__``, ``self.m()`` over the enclosing
  class hierarchy (ancestors *and* overriding descendants — a virtual
  call may land in either), and generic ``x.m()`` against every class
  defining ``m``;
* a bounded-depth reachability closure (:meth:`CallGraph.reachable`)
  returning, for every reached function, the call chain from its seed
  — the evidence the worker-purity rule prints.

Resolution is deliberately an over-approximation: dispatch that cannot
be narrowed fans out to every candidate, and call sites that resolve
to nothing known are recorded per function in
:attr:`CallGraph.unknown_calls` so summaries can report "calls unknown
callable" instead of silently assuming purity.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.context import SourceFile
from repro.analysis.flow.cfg import SCOPE_STMTS

#: Marker comment that declares a module-level mutable as intentionally
#: per-process (each pool worker mutates its own copy after fork/spawn,
#: so there is no shared-state race for R013 to report).
WORKER_LOCAL_MARKER = "repro: worker-local"

#: Marker comment on a ``def`` line that excludes the function from the
#: perf tier's hot regions: it is neither treated as hot itself nor
#: traversed through when closing over the hot seeds (validation and
#: debug helpers that happen to be called from a kernel opt out here).
COLD_MARKER = "repro: cold"

#: Function names that are hot by definition: the trace-filter kernels
#: run once per trace record before the simulator ever sees a request.
HOT_KERNEL_FUNCTIONS = frozenset({"filter_trace", "filter_trace_vectorized"})

#: Sampling filter kernels that are hot by definition: membership
#: selection and trace subsetting touch every record of the *full*
#: trace before the sampled engine replays the 1-in-K subset, so they
#: bound the engine's achievable speedup.
HOT_SAMPLING_FUNCTIONS = frozenset({
    "sample_mask", "page_membership", "subset_trace", "assign_groups",
    "frequency_ranks",
})

#: Per-class drive-loop methods that are hot by definition: the
#: simulator replay loops dispatch every request of a run (``_drive``
#: is the chunked loop every entry point funnels into), the streaming
#: trace sources parse/slice every request before the simulator sees
#: it, and the sampled engine's membership draws run once per
#: replicate.
HOT_DRIVE_METHODS: dict[str, tuple[str, ...]] = {
    "HybridMemorySimulator": ("_replay", "_drive"),
    "IterableTraceSource": ("chunks",),
    "TextTraceSource": ("chunks",),
    "_Membership": ("draw", "replicate_draws"),
}

#: Default bound on the reachability closure depth.
DEFAULT_DEPTH = 16

#: Builtins whose calls are fully understood (no project code runs).
PURE_BUILTINS = frozenset({
    "abs", "all", "any", "bool", "bytes", "callable", "chr", "complex",
    "dict", "divmod", "enumerate", "filter", "float", "format",
    "frozenset", "getattr", "hasattr", "hash", "id", "int", "isinstance",
    "issubclass", "iter", "len", "list", "map", "max", "memoryview",
    "min", "next", "object", "ord", "range", "repr", "reversed", "round",
    "set", "slice", "sorted", "str", "sum", "super", "tuple", "type",
    "vars", "zip",
    # Exception constructors: ``raise ValueError(...)`` is not a call
    # into project code.
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "Exception", "FileNotFoundError", "IndexError", "KeyError",
    "LookupError", "NotImplementedError", "OSError", "OverflowError",
    "RuntimeError", "StopIteration", "TypeError", "ValueError",
    "ZeroDivisionError",
})

#: Builtins that perform I/O when called.
IO_BUILTINS = frozenset({"print", "open", "input", "breakpoint"})

#: Method names treated as builtin container/string operations when no
#: project class defines a method of that name.
BENIGN_METHODS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "sort", "reverse",
    "copy", "get", "items", "keys", "values", "join", "split",
    "rsplit", "strip", "lstrip", "rstrip", "startswith", "endswith",
    "format", "encode", "decode", "lower", "upper", "replace", "count",
    "index", "find", "rfind", "zfill", "hexdigest", "digest",
    "appendleft", "popleft", "most_common", "total_seconds", "bit_length",
    "to_bytes", "from_bytes", "is_integer", "as_integer_ratio",
    "isdigit", "isalpha", "splitlines", "title", "capitalize",
})

#: ``multiprocessing``/``concurrent.futures`` methods whose first
#: callable argument runs in another process: the pool-submission
#: sites the worker-purity rule seeds from.
POOL_SUBMIT_METHODS = frozenset({
    "imap", "imap_unordered", "map", "map_async", "starmap",
    "starmap_async", "apply", "apply_async", "submit",
})


def short_chain(graph: "CallGraph", chain: Sequence[str]) -> str:
    """Render a call chain with module prefixes stripped for messages.

    ``("repro.core.m.P.access", "repro.core.m.P._fault")`` becomes
    ``"P.access -> P._fault"`` — the form the deep and perf tiers print
    as evidence.
    """
    parts = []
    for qname in chain:
        info = graph.functions.get(qname)
        if info is not None and qname.startswith(info.module + "."):
            parts.append(qname[len(info.module) + 1:])
        else:
            parts.append(qname)
    return " -> ".join(parts)


def module_name(path: Path) -> str:
    """Dotted module name for ``path``, anchored at ``repro``/``src``.

    Falls back to the last two path components for files outside a
    recognisable package root (fixture trees in tests).
    """
    parts = list(path.with_suffix("").parts)
    anchored = False
    for anchor in ("repro", "src"):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            if anchor == "src":
                index += 1
            parts = parts[index:]
            anchored = True
            break
    if not anchored:
        parts = parts[-2:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def inline_nodes(
    node: ast.AST, *, into_lambda: bool = True
) -> Iterator[ast.AST]:
    """Descendants of ``node`` that execute inline with it.

    Skips nested function/class definitions (their bodies run when
    *called*, not here); lambdas are included by default because their
    bodies typically run within the same dynamic extent (sort keys,
    filters), and excluded on request for strictly-sequential analyses.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, SCOPE_STMTS):
            continue
        if isinstance(child, ast.Lambda) and not into_lambda:
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def collect_scope(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[frozenset[str], frozenset[str], frozenset[str]]:
    """``(local names, global decls, nonlocal decls)`` of ``func``.

    Locals include parameters and every name bound inline (assignment,
    loop target, ``with ... as``, walrus, handler name, in-function
    imports), minus the ``global``/``nonlocal`` declarations.
    """
    args = func.args
    names: set[str] = {
        arg.arg
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        )
    }
    globals_: set[str] = set()
    nonlocals: set[str] = set()
    for node in inline_nodes(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.Global):
            globals_.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            nonlocals.update(node.names)
    return (
        frozenset(names - globals_ - nonlocals),
        frozenset(globals_),
        frozenset(nonlocals),
    )


def build_aliases(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, tuple[str, str]]:
    """Single-assignment local aliases used to sharpen resolution.

    Maps a local name to ``("attr", a)`` when bound from ``<expr>.a``
    (``bus = mm.events`` makes ``bus`` an events-attribute alias) or to
    ``("name", n)`` when bound from another plain name.  Names bound
    more than once, or from anything else, resolve to nothing here.
    """
    aliases: dict[str, tuple[str, str]] = {}
    seen: set[str] = set()

    def bind(name: str) -> bool:
        """Record one binding of ``name``; True on the first sighting.

        Traversal order is arbitrary, so *any* second binding kills the
        alias regardless of which assignment was visited first.
        """
        if name in seen:
            aliases.pop(name, None)
            return False
        seen.add(name)
        return True

    for node in inline_nodes(func):
        if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        if isinstance(node, ast.Assign) and len(targets) == 1 \
                and isinstance(targets[0], ast.Name):
            if bind(targets[0].id):
                if isinstance(node.value, ast.Attribute):
                    aliases[targets[0].id] = ("attr", node.value.attr)
                elif isinstance(node.value, ast.Name):
                    aliases[targets[0].id] = ("name", node.value.id)
            continue
        for target in targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name) \
                        and isinstance(leaf.ctx, ast.Store):
                    bind(leaf.id)
    return aliases


def attribute_base(node: ast.expr) -> tuple[str | None, list[str]]:
    """Root name and attribute path of a ``a.b.c``-style chain.

    ``mm.accounting.read_requests`` -> ``("mm", ["accounting",
    "read_requests"])``; returns ``(None, [])`` when the chain is not
    rooted at a plain name (e.g. a call result).
    """
    attrs: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        attrs.append(current.attr)
        current = current.value
    while isinstance(current, ast.Subscript):
        current = current.value
        while isinstance(current, ast.Attribute):
            attrs.append(current.attr)
            current = current.value
    if isinstance(current, ast.Name):
        return current.id, list(reversed(attrs))
    return None, []


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qname: str
    module: str
    path: str
    name: str
    cls: str | None
    parent: str | None
    line: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...]
    local_names: frozenset[str] = frozenset()
    global_decls: frozenset[str] = frozenset()
    nonlocal_decls: frozenset[str] = frozenset()


@dataclass
class ModuleIndex:
    """Per-file slice of the call graph (memoised by stat signature)."""

    module: str
    path: str
    functions: list[FunctionInfo] = field(default_factory=list)
    classes: dict[str, list[str]] = field(default_factory=dict)
    module_globals: dict[str, int] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)
    worker_local: frozenset[str] = frozenset()


def _resolve_relative(base_module: str, node: ast.ImportFrom) -> str:
    parts = base_module.split(".")
    if node.level > 0:
        parts = parts[: max(len(parts) - node.level, 0)]
        prefix = ".".join(parts)
    else:
        prefix = ""
    if node.module:
        return f"{prefix}.{node.module}" if prefix else node.module
    return prefix


def build_module_index(src: SourceFile) -> ModuleIndex:
    """Index one parsed file: functions, classes, globals, imports."""
    module = module_name(src.path)
    index = ModuleIndex(module=module, path=str(src.path))
    lines = src.lines
    for stmt in src.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            elts = target.elts if isinstance(target, ast.Tuple) else [target]
            for elt in elts:
                if isinstance(elt, ast.Name):
                    index.module_globals.setdefault(elt.id, stmt.lineno)
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else local
                index.imports[local] = origin
        elif isinstance(stmt, ast.ImportFrom):
            origin_module = _resolve_relative(module, stmt)
            for alias in stmt.names:
                local = alias.asname or alias.name
                index.imports[local] = (
                    f"{origin_module}.{alias.name}" if origin_module
                    else alias.name
                )
    marked = {
        name for name, line in index.module_globals.items()
        if 1 <= line <= len(lines) and WORKER_LOCAL_MARKER in lines[line - 1]
    }
    index.worker_local = frozenset(marked)
    _index_functions(index, src.tree.body, cls=None, parent=None)
    return index


def _index_functions(
    index: ModuleIndex,
    body: Sequence[ast.stmt],
    cls: str | None,
    parent: str | None,
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if parent is not None:
                qname = f"{parent}.<locals>.{stmt.name}"
            elif cls is not None:
                qname = f"{index.module}.{cls}.{stmt.name}"
            else:
                qname = f"{index.module}.{stmt.name}"
            args = stmt.args
            params = tuple(
                arg.arg for arg in
                (*args.posonlyargs, *args.args, *args.kwonlyargs)
            )
            local_names, global_decls, nonlocal_decls = collect_scope(stmt)
            index.functions.append(FunctionInfo(
                qname=qname,
                module=index.module,
                path=index.path,
                name=stmt.name,
                cls=cls,
                parent=parent,
                line=stmt.lineno,
                node=stmt,
                params=params,
                local_names=local_names,
                global_decls=global_decls,
                nonlocal_decls=nonlocal_decls,
            ))
            _index_functions(index, stmt.body, cls=None, parent=qname)
        elif isinstance(stmt, ast.ClassDef):
            if cls is None and parent is None:
                bases = [
                    base.id if isinstance(base, ast.Name) else base.attr
                    for base in stmt.bases
                    if isinstance(base, (ast.Name, ast.Attribute))
                ]
                index.classes[stmt.name] = bases
                _index_functions(index, stmt.body, cls=stmt.name, parent=None)
            # Classes nested in functions/classes are rare enough to skip.


#: Per-file index cache: path -> ((mtime_ns, size), index).
_INDEX_CACHE: dict[str, tuple[tuple[int, int], ModuleIndex]] = {}  # repro: worker-local


def indexed(src: SourceFile) -> ModuleIndex:
    """The module index for ``src``, reusing the stat-signature cache."""
    key = str(src.path)
    try:
        stat = src.path.stat()
        signature: tuple[int, int] | None = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        signature = None
    if signature is not None:
        cached = _INDEX_CACHE.get(key)
        if cached is not None and cached[0] == signature:
            return cached[1]
    index = build_module_index(src)
    if signature is not None:
        _INDEX_CACHE[key] = (signature, index)
    return index


@dataclass
class CallGraph:
    """Resolved call edges over every function in the linted files."""

    indexes: dict[str, ModuleIndex] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    by_method: dict[str, list[str]] = field(default_factory=dict)
    by_func_name: dict[str, list[str]] = field(default_factory=dict)
    class_methods: dict[str, dict[str, str]] = field(default_factory=dict)
    class_bases: dict[str, list[str]] = field(default_factory=dict)
    class_module: dict[str, str] = field(default_factory=dict)
    edges: dict[str, tuple[str, ...]] = field(default_factory=dict)
    unknown_calls: dict[str, tuple[int, ...]] = field(default_factory=dict)
    _related: dict[str, frozenset[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: Sequence[SourceFile]) -> "CallGraph":
        graph = cls()
        for src in files:
            index = indexed(src)
            graph.indexes[index.path] = index
            for name, bases in index.classes.items():
                graph.class_bases.setdefault(name, bases)
                graph.class_module.setdefault(name, index.module)
            for info in index.functions:
                graph.functions[info.qname] = info
                if info.cls is not None:
                    graph.by_method.setdefault(info.name, []).append(
                        info.qname)
                    graph.class_methods.setdefault(
                        info.cls, {})[info.name] = info.qname
                elif info.parent is None:
                    graph.by_func_name.setdefault(info.name, []).append(
                        info.qname)
        for info in graph.functions.values():
            graph._build_edges(info)
        return graph

    def _build_edges(self, info: FunctionInfo) -> None:
        aliases = build_aliases(info.node)
        targets: list[str] = []
        unknown_lines: list[int] = []
        # Defining a nested function may mean calling it.
        prefix = f"{info.qname}.<locals>."
        for qname in self.functions:
            if qname.startswith(prefix) \
                    and "." not in qname[len(prefix):]:
                targets.append(qname)
        for node in inline_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved, unknown = self.resolve_call(info, node, aliases)
            targets.extend(resolved)
            if unknown:
                unknown_lines.append(node.lineno)
        self.edges[info.qname] = tuple(dict.fromkeys(targets))
        if unknown_lines:
            self.unknown_calls[info.qname] = tuple(unknown_lines)

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------
    def related_classes(self, cls_name: str) -> frozenset[str]:
        """``cls_name`` plus ancestors and descendants, by name."""
        cached = self._related.get(cls_name)
        if cached is not None:
            return cached
        related = {cls_name}
        frontier = [cls_name]
        while frontier:  # ancestors
            current = frontier.pop()
            for base in self.class_bases.get(current, []):
                if base not in related:
                    related.add(base)
                    frontier.append(base)
        changed = True
        while changed:  # descendants (of anything already related)
            changed = False
            for name, bases in self.class_bases.items():
                if name not in related and any(b in related for b in bases):
                    related.add(name)
                    changed = True
        result = frozenset(related)
        self._related[cls_name] = result
        return result

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self,
        info: FunctionInfo,
        call: ast.Call,
        aliases: dict[str, tuple[str, str]],
    ) -> tuple[list[str], bool]:
        """Possible targets of one call site: ``(qnames, unknown)``.

        ``unknown`` is True when the callee cannot be mapped to any
        known function, class or builtin — the caller's summary then
        records "calls unknown callable".
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(info, func.id, aliases)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(info, func, aliases)
        return [], True

    def _resolve_name(
        self,
        info: FunctionInfo,
        name: str,
        aliases: dict[str, tuple[str, str]],
        _depth: int = 0,
    ) -> tuple[list[str], bool]:
        alias = aliases.get(name)
        if alias is not None and _depth < 4:
            kind, value = alias
            if kind == "name":
                return self._resolve_name(info, value, aliases, _depth + 1)
            return self._resolve_method(info, value)
        if name in info.local_names and alias is None:
            # A locally-bound callable we could not trace.
            return [], True
        index = self.indexes.get(info.path)
        module = index.module if index is not None else info.module
        direct = self.functions.get(f"{module}.{name}")
        if direct is not None and direct.cls is None:
            return [direct.qname], False
        if name in self.class_methods or name in self.class_bases:
            return self._constructor_targets(name), False
        if index is not None and name in index.imports:
            return self._resolve_import(index.imports[name])
        if name in IO_BUILTINS or name in PURE_BUILTINS:
            return [], False
        return [], True

    def _constructor_targets(self, cls_name: str) -> list[str]:
        targets: list[str] = []
        methods = self.class_methods.get(cls_name, {})
        for special in ("__init__", "__post_init__"):
            qname = methods.get(special)
            if qname is not None:
                targets.append(qname)
        return targets

    def _resolve_import(self, origin: str) -> tuple[list[str], bool]:
        direct = self.functions.get(origin)
        if direct is not None:
            return [direct.qname], False
        tail = origin.rsplit(".", 1)[-1]
        if tail in self.class_methods or tail in self.class_bases:
            return self._constructor_targets(tail), False
        if origin.split(".")[0] == "repro":
            # A repro symbol outside the linted file set.
            return [], True
        return [], False  # stdlib / third-party: well understood enough

    def _resolve_attribute(
        self,
        info: FunctionInfo,
        func: ast.Attribute,
        aliases: dict[str, tuple[str, str]],
    ) -> tuple[list[str], bool]:
        method = func.attr
        base, chain = attribute_base(func)
        if base is None:
            return self._resolve_method(info, method)
        if base in ("self", "cls") and info.cls is not None and len(chain) == 1:
            related = self.related_classes(info.cls)
            targets = [
                qname for qname in self.by_method.get(method, [])
                if self.functions[qname].cls in related
            ]
            if targets:
                return targets, False
            return self._resolve_method(info, method)
        index = self.indexes.get(info.path)
        imported = index.imports.get(base) if index is not None else None
        if imported is not None and base not in info.local_names:
            if len(chain) == 1:
                return self._resolve_import(f"{imported}.{method}")
            return [], False
        return self._resolve_method(info, method)

    def _resolve_method(
        self, info: FunctionInfo, method: str
    ) -> tuple[list[str], bool]:
        targets = self.by_method.get(method, [])
        if targets:
            return list(targets), False
        if method in BENIGN_METHODS:
            return [], False
        return [], True

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable(
        self,
        seeds: Sequence[str],
        max_depth: int = DEFAULT_DEPTH,
        exclude: frozenset[str] = frozenset(),
    ) -> dict[str, tuple[str, ...]]:
        """Functions reachable from ``seeds`` within ``max_depth`` calls.

        Maps each reached qname to its call chain ``(seed, ...,
        qname)`` — the shortest one found, for diagnostics.  Functions
        in ``exclude`` are neither reported nor traversed through (the
        perf tier passes the ``# repro: cold`` set here).
        """
        chains: dict[str, tuple[str, ...]] = {}
        queue: deque[tuple[str, tuple[str, ...]]] = deque()
        for seed in seeds:
            if seed in self.functions and seed not in chains \
                    and seed not in exclude:
                chains[seed] = (seed,)
                queue.append((seed, (seed,)))
        while queue:
            qname, chain = queue.popleft()
            if len(chain) > max_depth:
                continue
            for callee in self.edges.get(qname, ()):
                if callee not in chains and callee not in exclude:
                    chains[callee] = chain + (callee,)
                    queue.append((callee, chain + (callee,)))
        return chains

    # ------------------------------------------------------------------
    # Seed discovery
    # ------------------------------------------------------------------
    def hot_seeds(self, policy_classes: Sequence[str]) -> dict[str, str]:
        """Hot entry points for the perf tier: qname -> why it is hot.

        Four families: policy ``access``/``access_batch`` kernels (one
        body per request or per batch), the trace-filter kernels
        (:data:`HOT_KERNEL_FUNCTIONS`), the sampling filter kernels
        (:data:`HOT_SAMPLING_FUNCTIONS`), and the simulator/sampler
        drive loops (:data:`HOT_DRIVE_METHODS`).  Everything reachable
        from these inherits hotness via :meth:`reachable`.
        """
        seeds: dict[str, str] = {}
        for cls_name in policy_classes:
            methods = self.class_methods.get(cls_name, {})
            for method in ("access", "access_batch"):
                qname = methods.get(method)
                if qname is not None:
                    seeds.setdefault(
                        qname,
                        f"policy {method} kernel runs once per request",
                    )
        for name in sorted(HOT_KERNEL_FUNCTIONS):
            for qname in self.by_func_name.get(name, []):
                seeds.setdefault(
                    qname, "trace-filter kernel runs once per trace record")
        for name in sorted(HOT_SAMPLING_FUNCTIONS):
            for qname in self.by_func_name.get(name, []):
                seeds.setdefault(
                    qname, "sampling filter kernel touches every trace record")
        for cls_name, methods_wanted in HOT_DRIVE_METHODS.items():
            methods = self.class_methods.get(cls_name, {})
            for method in methods_wanted:
                qname = methods.get(method)
                if qname is not None:
                    seeds.setdefault(
                        qname, "simulator drive loop dispatches every request")
        return seeds

    def pool_submissions(self) -> dict[str, str]:
        """Callables handed to a worker pool: qname -> submitting site.

        Scans every function for ``pool.imap_unordered(fn, ...)``-style
        calls (:data:`POOL_SUBMIT_METHODS`) and resolves the callable
        argument.
        """
        submitted: dict[str, str] = {}
        for info in self.functions.values():
            aliases = build_aliases(info.node)
            for node in inline_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute) \
                        or func.attr not in POOL_SUBMIT_METHODS:
                    continue
                candidates: list[ast.expr] = []
                if node.args:
                    candidates.append(node.args[0])
                for keyword in node.keywords:
                    if keyword.arg in ("func", "target"):
                        candidates.append(keyword.value)
                for candidate in candidates:
                    if isinstance(candidate, ast.Name):
                        resolved, _ = self._resolve_name(
                            info, candidate.id, aliases)
                        for qname in resolved:
                            submitted.setdefault(
                                qname, f"{info.qname}:{node.lineno}")
        return submitted
