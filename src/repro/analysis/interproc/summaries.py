"""Purity/side-effect summaries over the call graph.

Every function gets a :class:`Summary` — the join of what its body
does directly and what everything it may call does — computed as a
fixpoint over the :class:`~repro.analysis.interproc.callgraph.CallGraph`:

* ``mutates_params``: parameter names written through (attribute or
  item assignment, or a mutating method call on the parameter).  Kept
  *direct-only*: the graph does not track argument binding, so
  propagating it through calls would be noise.
* ``mutates_globals``: module-level slots written (``module:name``),
  directly or via any callee.
* ``mutates_cells``: closed-over variables of an enclosing function
  that a nested function rebinds (``nonlocal``) or mutates in place.
* ``performs_io``: reaches ``print``/``open``/file-writing calls.
* ``calls_unknown``: some call site resolved to nothing known — the
  summary is a lower bound there, and rules must say so rather than
  assume purity.
* ``emits_events``: may append to an :class:`EventBus` pending buffer
  or tick its clock — the callout classification the sync-before-emit
  rule (R014) is built on.

Direct effects are extracted per file and memoised on the same
``(mtime_ns, size)`` stat signature as the module indexes; only the
cross-file fixpoint is recomputed per run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.context import SourceFile
from repro.analysis.interproc.callgraph import (
    IO_BUILTINS,
    WORKER_LOCAL_MARKER,
    CallGraph,
    FunctionInfo,
    ModuleIndex,
    attribute_base,
    build_aliases,
    inline_nodes,
)

#: Method calls that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "sort", "reverse",
    "appendleft", "popleft", "__setitem__", "__delitem__",
})

#: Method calls that write to a file-like or filesystem receiver.
IO_METHODS = frozenset({
    "write", "writelines", "write_text", "write_bytes",
    "mkdir", "makedirs", "unlink", "touch", "rmdir",
})

#: ``EventBus`` emission methods that stamp the current clock into an
#: event (``annotate`` is deliberately absent: it stages trigger
#: context without reading the clock).
EMIT_METHODS = frozenset({
    "migration", "page_fault", "eviction", "epoch", "flush", "finish",
})

#: The attribute the manager and kernels bind event buses from
#: (``bus = mm.events``, ``events = self.events``).
BUS_ATTR = "events"


@dataclass(frozen=True)
class Summary:
    """What calling a function may do (see module docstring)."""

    mutates_params: frozenset[str] = frozenset()
    mutates_globals: frozenset[str] = frozenset()
    mutates_cells: frozenset[str] = frozenset()
    performs_io: bool = False
    calls_unknown: bool = False
    emits_events: bool = False

    def join(self, other: "Summary") -> "Summary":
        """Least upper bound; ``mutates_params`` stays direct-only."""
        return Summary(
            mutates_params=self.mutates_params,
            mutates_globals=self.mutates_globals | other.mutates_globals,
            mutates_cells=self.mutates_cells | other.mutates_cells,
            performs_io=self.performs_io or other.performs_io,
            calls_unknown=self.calls_unknown or other.calls_unknown,
            emits_events=self.emits_events or other.emits_events,
        )


@dataclass(frozen=True)
class MutationSite:
    """One shared-state write, for precise R013 reporting.

    ``kind`` is ``"global"`` or ``"cell"``; ``slot`` is the canonical
    ``module:name`` (or ``owner-qname:name``) key; ``marked`` is True
    when the mutating line itself carries the worker-local marker.
    """

    kind: str
    name: str
    slot: str
    line: int
    marked: bool


@dataclass(frozen=True)
class DirectEffects:
    """A function's own effects plus the sites behind them."""

    summary: Summary
    sites: tuple[MutationSite, ...]


def bus_receiver_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> frozenset[str]:
    """Local names bound from an ``.events`` attribute in ``func``."""
    return frozenset(
        name
        for name, (kind, attr) in build_aliases(func).items()
        if kind == "attr" and attr == BUS_ATTR
    )


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flatten_targets(elt)
    elif isinstance(target, ast.Starred):
        yield from _flatten_targets(target.value)
    else:
        yield target


class _Extractor:
    """Single-function direct-effect extraction."""

    def __init__(
        self,
        info: FunctionInfo,
        index: ModuleIndex,
        functions: dict[str, FunctionInfo],
        lines: list[str],
    ) -> None:
        self.info = info
        self.index = index
        self.functions = functions
        self.lines = lines
        self.params: set[str] = set()
        self.sites: list[MutationSite] = []
        self.performs_io = False
        self.emits = False
        self.bus_names = bus_receiver_names(info.node)

    # -- name classification -------------------------------------------
    def _cell_owner(self, name: str) -> FunctionInfo | None:
        parent_qname = self.info.parent
        while parent_qname is not None:
            parent = self.functions.get(parent_qname)
            if parent is None:
                return None
            if name in parent.local_names:
                return parent
            parent_qname = parent.parent
        return None

    def _marked(self, line: int) -> bool:
        return (
            1 <= line <= len(self.lines)
            and WORKER_LOCAL_MARKER in self.lines[line - 1]
        )

    def _record(self, kind: str, name: str, slot: str, line: int) -> None:
        self.sites.append(MutationSite(
            kind=kind, name=name, slot=slot, line=line,
            marked=self._marked(line),
        ))

    def _classify_mutation(
        self, base: str, attrs: list[str], line: int, rebind: bool
    ) -> None:
        info = self.info
        if rebind:
            # Rebinding a plain name only escapes via declarations.
            if base in info.global_decls:
                self._record(
                    "global", base, f"{self.index.module}:{base}", line)
            elif base in info.nonlocal_decls:
                owner = self._cell_owner(base)
                owner_name = owner.qname if owner is not None else "<outer>"
                self._record("cell", base, f"{owner_name}:{base}", line)
            return
        if base in ("self", "cls") and info.cls is not None:
            self.params.add(base)
            return
        if base in info.params:
            self.params.add(base)
            return
        if base in info.global_decls:
            self._record("global", base, f"{self.index.module}:{base}", line)
            return
        if base in info.local_names:
            return
        owner = self._cell_owner(base)
        if owner is not None:
            self._record("cell", base, f"{owner.qname}:{base}", line)
            return
        if base in self.index.module_globals:
            self._record("global", base, f"{self.index.module}:{base}", line)
            return
        origin = self.index.imports.get(base)
        if origin is not None:
            if attrs:
                slot = f"{origin}:{attrs[0]}"
                name = f"{base}.{attrs[0]}"
            else:
                head, _, tail = origin.rpartition(".")
                slot = f"{head}:{tail}" if head else origin
                name = base
            self._record("global", name, slot, line)

    # -- the scan -------------------------------------------------------
    def run(self) -> DirectEffects:
        for node in inline_nodes(self.info.node):
            self._visit(node)
        summary = Summary(
            mutates_params=frozenset(self.params),
            mutates_globals=frozenset(
                site.slot for site in self.sites if site.kind == "global"
            ),
            mutates_cells=frozenset(
                site.slot for site in self.sites if site.kind == "cell"
            ),
            performs_io=self.performs_io,
            calls_unknown=False,  # filled in from the graph by summarize()
            emits_events=self.emits,
        )
        return DirectEffects(summary=summary, sites=tuple(self.sites))

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Attribute) and node.attr == "_pending":
            self.emits = True
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if isinstance(node, ast.Assign):
                raw_targets = node.targets
            else:
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    return
                raw_targets = [node.target]
            for target in raw_targets:
                for leaf in _flatten_targets(target):
                    self._visit_target(leaf, node.lineno)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                for leaf in _flatten_targets(target):
                    self._visit_target(leaf, node.lineno)
        elif isinstance(node, ast.Call):
            self._visit_call(node)

    def _visit_target(self, target: ast.expr, line: int) -> None:
        if isinstance(target, ast.Name):
            self._classify_mutation(target.id, [], line, rebind=True)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            base, attrs = attribute_base(target)
            if base is None:
                return
            if isinstance(target, ast.Attribute) \
                    and target.attr == "clock" and base in self.bus_names:
                self.emits = True
            self._classify_mutation(base, attrs, line, rebind=False)

    def _visit_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in IO_BUILTINS:
                self.performs_io = True
            return
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in IO_METHODS:
            self.performs_io = True
        base, _ = attribute_base(func.value)
        if func.attr in EMIT_METHODS and base is not None \
                and base in self.bus_names:
            self.emits = True
        if func.attr in MUTATOR_METHODS:
            receiver_base, receiver_attrs = attribute_base(func.value)
            if receiver_base is not None:
                self._classify_mutation(
                    receiver_base, receiver_attrs, call.lineno, rebind=False)


#: Per-file direct-effect cache: path -> ((mtime_ns, size), effects).
_DIRECT_CACHE: dict[  # repro: worker-local
    str, tuple[tuple[int, int], dict[str, DirectEffects]]
] = {}


def direct_effects_for_file(
    src: SourceFile, index: ModuleIndex
) -> dict[str, DirectEffects]:
    """Direct effects of every function in one file (stat-memoised)."""
    key = str(src.path)
    try:
        stat = src.path.stat()
        signature: tuple[int, int] | None = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        signature = None
    if signature is not None:
        cached = _DIRECT_CACHE.get(key)
        if cached is not None and cached[0] == signature:
            return cached[1]
    functions = {info.qname: info for info in index.functions}
    lines = src.lines
    effects = {
        info.qname: _Extractor(info, index, functions, lines).run()
        for info in index.functions
    }
    if signature is not None:
        _DIRECT_CACHE[key] = (signature, effects)
    return effects


@dataclass
class ProjectSummaries:
    """Direct effects plus the converged transitive summaries."""

    direct: dict[str, DirectEffects]
    transitive: dict[str, Summary]


def summarize(
    graph: CallGraph, files: list[SourceFile]
) -> ProjectSummaries:
    """Compute per-function summaries by fixpoint over ``graph``."""
    direct: dict[str, DirectEffects] = {}
    by_path = {str(src.path): src for src in files}
    for path, index in graph.indexes.items():
        src = by_path.get(path)
        if src is None:
            continue
        direct.update(direct_effects_for_file(src, index))
    transitive: dict[str, Summary] = {}
    for qname in graph.functions:
        effects = direct.get(qname)
        base = effects.summary if effects is not None else Summary()
        if qname in graph.unknown_calls:
            base = Summary(
                mutates_params=base.mutates_params,
                mutates_globals=base.mutates_globals,
                mutates_cells=base.mutates_cells,
                performs_io=base.performs_io,
                calls_unknown=True,
                emits_events=base.emits_events,
            )
        transitive[qname] = base
    callers: dict[str, list[str]] = {}
    for caller, callees in graph.edges.items():
        for callee in callees:
            callers.setdefault(callee, []).append(caller)
    pending = set(graph.functions)
    while pending:
        qname = pending.pop()
        state = transitive.get(qname)
        if state is None:
            continue
        for caller in callers.get(qname, ()):
            old = transitive[caller]
            new = old.join(state)
            if new != old:
                transitive[caller] = new
                pending.add(caller)
    return ProjectSummaries(direct=direct, transitive=transitive)
