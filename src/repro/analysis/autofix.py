"""Mechanical fixes for the mechanically fixable rules (R003, R005).

``repro lint --fix`` rewrites, in place:

* **R003** — a mutable default argument becomes ``None`` plus an
  ``if arg is None: arg = <original>`` guard at the top of the body
  (after the docstring), the standard idiom the rule's message asks
  for.
* **R005** — an inline magic latency/energy number in the device-model
  layer becomes ``<coeff> * <UNIT>`` over the constants in
  :mod:`repro.memory.devices`, adding/extending the import.  A fix is
  only applied when the rewritten expression reproduces the original
  float *bit-exactly*; anything else is left for a human.

Both fixes are idempotent: the rewritten form no longer matches the
rule, so a second ``--fix`` pass is a no-op (asserted by tests).  Only
single-line offending expressions are rewritten — multi-line spans are
skipped rather than risked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import canonical_id
from repro.analysis.lint import iter_python_files
from repro.analysis.rules import MagicNumberRule, MutableDefaultRule

#: Rules ``--fix`` knows how to rewrite.
FIXABLE_RULES: tuple[str, ...] = ("R003", "R005")

#: Unit constants (name, value) per keyword fragment, largest first —
#: the fixer picks the largest unit with an exact coefficient.
_UNIT_TABLES: dict[str, tuple[tuple[str, float], ...]] = {
    "latency": (
        ("MILLISECOND", 1e-3),
        ("MICROSECOND", 1e-6),
        ("NANOSECOND", 1e-9),
    ),
    "energy": (
        ("NANOJOULE", 1e-9),
    ),
}

_UNITS_MODULE = "repro.memory.devices"


@dataclass(frozen=True, order=True)
class Fix:
    """One applied rewrite, for reporting."""

    path: str
    line: int
    rule_id: str
    description: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.description}"


@dataclass(frozen=True)
class _Replacement:
    line: int  # 1-based
    col: int
    end_col: int
    text: str


@dataclass(frozen=True)
class _Insertion:
    before_line: int  # 1-based line the new lines go in front of
    lines: tuple[str, ...]


def _single_line(node: ast.expr) -> bool:
    return getattr(node, "end_lineno", None) == node.lineno


def _line_starts_clean(lines: list[str], lineno: int, col: int) -> bool:
    """True when ``lines[lineno-1][:col]`` is pure indentation."""
    if not 1 <= lineno <= len(lines):
        return False
    return lines[lineno - 1][:col].strip() == ""


# ----------------------------------------------------------------------
# R003 — mutable defaults -> None + guard
# ----------------------------------------------------------------------
def _default_pairs(
    args: ast.arguments,
) -> list[tuple[str, ast.expr]]:
    positional = [*args.posonlyargs, *args.args]
    pairs: list[tuple[str, ast.expr]] = [
        (arg.arg, default)
        for arg, default in zip(
            positional[len(positional) - len(args.defaults):],
            args.defaults,
        )
    ]
    pairs.extend(
        (arg.arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is not None
    )
    return pairs


def _fix_mutable_defaults(
    tree: ast.Module, text: str, lines: list[str], path: str
) -> tuple[list[_Replacement], list[_Insertion], list[Fix]]:
    replacements: list[_Replacement] = []
    insertions: list[_Insertion] = []
    fixes: list[Fix] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        guards: list[tuple[str, str]] = []
        start = len(replacements)
        for arg_name, default in _default_pairs(node.args):
            if not MutableDefaultRule._is_mutable(default):
                continue
            if not _single_line(default):
                continue
            source = ast.get_source_segment(text, default)
            if source is None:
                continue
            end_col = getattr(default, "end_col_offset", None)
            if end_col is None:
                continue
            replacements.append(_Replacement(
                line=default.lineno,
                col=default.col_offset,
                end_col=end_col,
                text="None",
            ))
            guards.append((arg_name, source))
            fixes.append(Fix(
                path=path, line=default.lineno, rule_id="R003",
                description=(
                    f"default `{arg_name}={source}` -> None + in-body "
                    "guard"
                ),
            ))
        if not guards:
            continue
        anchor_index = 0
        body = node.body
        if (
            len(body) > 1
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            anchor_index = 1
        anchor = body[anchor_index]
        indent = " " * anchor.col_offset
        if not _line_starts_clean(lines, anchor.lineno, anchor.col_offset):
            # Single-line bodies (``def f(x=[]): return x``) are left
            # alone; there is nowhere safe to put the guard.
            del replacements[start:]
            del fixes[len(fixes) - len(guards):]
            continue
        guard_lines: list[str] = []
        for arg_name, source in guards:
            guard_lines.append(f"{indent}if {arg_name} is None:")
            guard_lines.append(f"{indent}    {arg_name} = {source}")
        insertions.append(_Insertion(
            before_line=anchor.lineno, lines=tuple(guard_lines),
        ))
    return replacements, insertions, fixes


# ----------------------------------------------------------------------
# R005 — magic device numbers -> coeff * UNIT
# ----------------------------------------------------------------------
def _format_coefficient(value: float, unit_value: float) -> str | None:
    """A *clean* source string ``c`` with ``float(c) * unit_value ==
    value`` bit-exactly, or None.

    Only short candidates (the rounded integer and the ``%g`` form)
    are tried: where no clean coefficient reproduces the float, the
    number is left alone for a human rather than rewritten as a
    17-digit repr or nudged by an ulp.
    """
    coefficient = value / unit_value
    candidates = []
    rounded = round(coefficient)
    if rounded != 0:
        candidates.append(str(int(rounded)))
    candidates.append(f"{coefficient:g}")
    for candidate in candidates:
        try:
            if float(candidate) * unit_value == value:
                return candidate
        except ValueError:  # pragma: no cover - defensive
            continue
    return None


def _pick_unit(
    keyword_name: str, value: float
) -> tuple[str, str] | None:
    """``(coefficient_source, unit_name)`` for a magic number."""
    for fragment, table in _UNIT_TABLES.items():
        if fragment not in keyword_name.lower():
            continue
        magnitude = abs(value)
        for unit_name, unit_value in table:
            if magnitude < unit_value:
                continue
            coefficient = _format_coefficient(value, unit_value)
            if coefficient is not None:
                return coefficient, unit_name
        # Smaller than the smallest unit: try fractional coefficients.
        unit_name, unit_value = table[-1]
        coefficient = _format_coefficient(value, unit_value)
        if coefficient is not None:
            return coefficient, unit_name
    return None


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names


def _fix_magic_numbers(
    tree: ast.Module, lines: list[str], path: Path
) -> tuple[list[_Replacement], list[_Insertion], list[Fix]]:
    rule = MagicNumberRule()
    if rule.scope_dir not in path.parts:
        return [], [], []
    replacements: list[_Replacement] = []
    fixes: list[Fix] = []
    needed_units: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            lowered = keyword.arg.lower()
            if not any(frag in lowered for frag in rule.keywords):
                continue
            if not rule._is_magic(keyword.value):
                continue
            target = keyword.value
            value = target.operand.value \
                if isinstance(target, ast.UnaryOp) else target.value
            sign = "-" if isinstance(target, ast.UnaryOp) else ""
            if not _single_line(target):
                continue
            picked = _pick_unit(keyword.arg, float(value))
            if picked is None:
                continue
            coefficient, unit_name = picked
            end_col = getattr(target, "end_col_offset", None)
            if end_col is None:
                continue
            replacements.append(_Replacement(
                line=target.lineno,
                col=target.col_offset,
                end_col=end_col,
                text=f"{sign}{coefficient} * {unit_name}",
            ))
            needed_units.add(unit_name)
            fixes.append(Fix(
                path=str(path), line=target.lineno, rule_id="R005",
                description=(
                    f"`{keyword.arg}={sign}{value}` -> "
                    f"{sign}{coefficient} * {unit_name}"
                ),
            ))
    insertions = _import_edits(tree, lines, needed_units, replacements)
    return replacements, insertions, fixes


def _import_edits(
    tree: ast.Module,
    lines: list[str],
    needed_units: set[str],
    replacements: list[_Replacement],
) -> list[_Insertion]:
    already = _module_level_names(tree)
    missing = sorted(needed_units - already)
    if not missing:
        return []
    for stmt in tree.body:
        if isinstance(stmt, ast.ImportFrom) \
                and stmt.module == _UNITS_MODULE and stmt.level == 0 \
                and stmt.end_lineno == stmt.lineno:
            names = sorted(
                {alias.name for alias in stmt.names} | set(missing)
            )
            replacements.append(_Replacement(
                line=stmt.lineno,
                col=stmt.col_offset,
                end_col=len(lines[stmt.lineno - 1]),
                text=f"from {_UNITS_MODULE} import {', '.join(names)}",
            ))
            return []
    insert_line = 1
    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            insert_line = (stmt.end_lineno or stmt.lineno) + 1
        elif isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, str) \
                and insert_line == 1:
            insert_line = (stmt.end_lineno or stmt.lineno) + 1
    return [_Insertion(
        before_line=insert_line,
        lines=(f"from {_UNITS_MODULE} import {', '.join(missing)}",),
    )]


# ----------------------------------------------------------------------
# Application
# ----------------------------------------------------------------------
def _apply(
    lines: list[str],
    replacements: list[_Replacement],
    insertions: list[_Insertion],
) -> list[str]:
    for replacement in sorted(
        replacements, key=lambda r: (r.line, r.col), reverse=True
    ):
        row = lines[replacement.line - 1]
        lines[replacement.line - 1] = (
            row[:replacement.col] + replacement.text
            + row[replacement.end_col:]
        )
    for insertion in sorted(
        insertions, key=lambda i: i.before_line, reverse=True
    ):
        index = insertion.before_line - 1
        lines[index:index] = list(insertion.lines)
    return lines


def fix_file(path: Path, select: set[str] | None = None) -> list[Fix]:
    """Rewrite one file in place; returns the fixes applied."""
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError:
        return []
    lines = text.splitlines()
    trailing_newline = text.endswith("\n")
    replacements: list[_Replacement] = []
    insertions: list[_Insertion] = []
    fixes: list[Fix] = []
    if select is None or "R003" in select:
        rep, ins, fix = _fix_mutable_defaults(tree, text, lines, str(path))
        replacements += rep
        insertions += ins
        fixes += fix
    if select is None or "R005" in select:
        rep, ins, fix = _fix_magic_numbers(tree, lines, path)
        replacements += rep
        insertions += ins
        fixes += fix
    if not fixes:
        return []
    new_lines = _apply(list(lines), replacements, insertions)
    new_text = "\n".join(new_lines) + ("\n" if trailing_newline else "")
    try:
        ast.parse(new_text)  # never write a file we broke
    except SyntaxError:  # pragma: no cover - safety valve
        return []
    path.write_text(new_text, encoding="utf-8")
    return sorted(fixes)


def fix_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
) -> list[Fix]:
    """Apply the mechanical fixes across ``paths``; returns them all."""
    wanted: set[str] | None = None
    if select is not None:
        wanted = {canonical_id(rule_id) for rule_id in select}
        wanted &= set(FIXABLE_RULES)
    fixes: list[Fix] = []
    for path in iter_python_files(paths):
        fixes.extend(fix_file(path, wanted))
    return sorted(fixes)
