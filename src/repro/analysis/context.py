"""Project-wide context shared by the lint rules.

Rules such as R010 (accounting contract) and R004 (registry coverage)
need to know which classes are placement policies and which class
names the policy registry references.  Both are computed once over the
whole set of linted files, so rules stay simple per-file visitors.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: The root of the policy class hierarchy (``repro.policies.base``).
POLICY_ROOT = "HybridMemoryPolicy"


@dataclass
class SourceFile:
    """One parsed python file."""

    path: Path
    text: str
    tree: ast.Module

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()


def base_names(node: ast.ClassDef) -> list[str]:
    """Base-class identifiers of a class (``Name`` ids / ``Attribute`` attrs)."""
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def is_abstract(node: ast.ClassDef) -> bool:
    """True when the class still declares abstract methods of its own."""
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in item.decorator_list:
                name = decorator.attr if isinstance(decorator, ast.Attribute) \
                    else getattr(decorator, "id", "")
                if name in ("abstractmethod", "abstractproperty"):
                    return True
    return False


@dataclass
class ProjectContext:
    """Cross-file facts the per-file rules consult."""

    files: list[SourceFile]
    #: class name -> base-class names, over every linted file.
    class_bases: dict[str, list[str]] = field(default_factory=dict)
    #: classes (transitively) derived from :data:`POLICY_ROOT`.
    policy_classes: set[str] = field(default_factory=set)
    #: identifiers and string literals appearing in ``policies/registry.py``,
    #: or ``None`` when no registry file is among the linted files.
    registry_names: set[str] | None = None
    #: per-run memoisation space for expensive analyses (keyed by the
    #: analysis; e.g. the units checker caches its per-file results and
    #: the project-wide dimension registry here).
    scratch: dict = field(default_factory=dict)

    @classmethod
    def build(cls, files: list[SourceFile]) -> "ProjectContext":
        context = cls(files=files)
        for src in files:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef):
                    context.class_bases[node.name] = base_names(node)
            if src.path.name == "registry.py":
                context.registry_names = _referenced_names(src.tree)
        context.policy_classes = _policy_closure(context.class_bases)
        return context

    def is_policy_class(self, node: ast.ClassDef) -> bool:
        return node.name in self.policy_classes


def _policy_closure(class_bases: dict[str, list[str]]) -> set[str]:
    """Classes deriving from the policy root, transitively by name.

    Bases defined outside the linted files are matched heuristically by
    the ``*Policy`` suffix so single-file lint runs still recognise
    e.g. ``class Variant(MigrationLRUPolicy)``.
    """
    policies = {POLICY_ROOT}
    changed = True
    while changed:
        changed = False
        for name, bases in class_bases.items():
            if name in policies:
                continue
            for base in bases:
                known = base in policies
                external = base not in class_bases and base.endswith("Policy")
                if known or external:
                    policies.add(name)
                    changed = True
                    break
    policies.discard(POLICY_ROOT)
    return policies


def _referenced_names(tree: ast.Module) -> set[str]:
    """Every identifier and string literal the registry mentions."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
        elif isinstance(node, ast.alias):
            names.add(node.name.split(".")[-1])
    return names
