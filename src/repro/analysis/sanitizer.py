"""Runtime simulation sanitizer: invariants checked while a policy runs.

The lint pass (:mod:`repro.analysis.rules`) proves bookkeeping
properties about the *source*; the sanitizer checks them about the
*execution*.  :class:`SanitizedPolicy` wraps any placement policy and,
after every serviced request, asserts the cross-layer invariants the
paper's models depend on:

* ``record_request`` ran exactly once for the request (the Eq. 1-3
  denominators count real requests);
* every accounting and wear counter is monotone;
* ``hits + faults == requests`` and the per-direction identities hold;
* DRAM/NVM occupancy never exceeds capacity;
* migration/fault/eviction counters agree with the DMA engine's
  transfer log (model events == mechanical page moves);
* NVM wear totals agree with the event counters
  (``request_writes == nvm_write_hits`` etc.).

Every ``deep_every`` requests (and at end-of-run ``validate``) it
additionally cross-checks page-table/frame-allocator consistency —
each resident page lives in exactly one tier, holds exactly one
allocated frame there, and no two pages share a frame — re-validates
per-page wear monotonicity, and invokes the wrapped policy's own
``validate()``.

Enable it per-simulator (``HybridMemorySimulator(..., sanitize=True)``),
per-invocation (``python -m repro simulate --sanitize``), or process-wide
with ``REPRO_SANITIZE=1`` (the tier-1 test suite does this via an
autouse fixture).
"""

from __future__ import annotations

import os
from dataclasses import fields
from typing import TYPE_CHECKING

from repro.mmu.dma import Channel
from repro.mmu.page import PageLocation

if TYPE_CHECKING:
    from repro.mmu.manager import MemoryManager
    from repro.policies.base import HybridMemoryPolicy

#: Environment variable that flips the simulator's sanitize default.
SANITIZE_ENV = "REPRO_SANITIZE"

#: Default cadence of the expensive page-table/frame cross-check.
#: The deep pass is O(resident pages); 4096 keeps its cost well under
#: the per-request checks on realistic traces while still bounding how
#: long structural corruption can go unnoticed.
DEFAULT_DEEP_EVERY = 4096

# Directed DMA channels grouped by the model-level event they realise.
_FAULT_CHANNELS = (
    Channel(PageLocation.DISK, PageLocation.DRAM),
    Channel(PageLocation.DISK, PageLocation.NVM),
)
_EVICTION_CHANNELS = (
    Channel(PageLocation.DRAM, PageLocation.DISK),
    Channel(PageLocation.NVM, PageLocation.DISK),
)
_PROMOTION_CHANNEL = Channel(PageLocation.NVM, PageLocation.DRAM)
_DEMOTION_CHANNEL = Channel(PageLocation.DRAM, PageLocation.NVM)


def sanitize_default() -> bool:
    """Whether simulators sanitize when not told explicitly."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


class SanitizerError(AssertionError):
    """A simulation invariant was violated."""


_FIELD_NAMES: dict[type, tuple[str, ...]] = {}  # repro: worker-local


def _counter_snapshot(accounting: object) -> dict[str, int]:
    names = _FIELD_NAMES.get(type(accounting))
    if names is None:
        names = tuple(f.name for f in fields(accounting))
        _FIELD_NAMES[type(accounting)] = names
    return {name: getattr(accounting, name) for name in names}


class SimulationSanitizer:
    """Invariant checker attached to one :class:`MemoryManager`."""

    def __init__(self, mm: "MemoryManager",
                 deep_every: int = DEFAULT_DEEP_EVERY,
                 policy: "HybridMemoryPolicy | None" = None) -> None:
        if deep_every < 1:
            raise ValueError("deep_every must be positive")
        self.mm = mm
        self.deep_every = deep_every
        self.policy = policy
        self.checked_requests = 0
        self._rebaseline()

    # ------------------------------------------------------------------
    def _rebaseline(self) -> None:
        """Capture counter baselines (fresh run or after a warm-up reset)."""
        mm = self.mm
        self._accounting_obj = mm.accounting
        self._wear_obj = mm.wear
        self._counters = _counter_snapshot(mm.accounting)
        self._wear_totals = (
            mm.wear.fault_fill_writes,
            mm.wear.migration_writes,
            mm.wear.request_writes,
        )
        self._page_writes: dict[int, int] = dict(mm.wear.page_writes)
        # The DMA log is never reset while the accounting is (warm-up
        # boundary), so transfer identities are checked on deltas from
        # these baselines.  Rebaselining may happen one request *after*
        # the reset, so back out the events the new epoch has already
        # accounted: baseline = transfers now - events counted now.
        accounting = mm.accounting
        faults, evictions, to_dram, to_nvm = self._dma_counts()
        self._dma_base = (
            faults - accounting.page_faults,
            evictions - accounting.evictions_to_disk,
            to_dram - accounting.migrations_to_dram,
            to_nvm - accounting.migrations_to_nvm,
        )

    def _dma_counts(self) -> tuple[int, int, int, int]:
        """(faults, evictions, promotions, demotions) from the DMA log."""
        transfers = self.mm.dma.transfers
        return (
            sum(transfers.get(channel, 0) for channel in _FAULT_CHANNELS),
            sum(transfers.get(channel, 0) for channel in _EVICTION_CHANNELS),
            transfers.get(_PROMOTION_CHANNEL, 0),
            transfers.get(_DEMOTION_CHANNEL, 0),
        )

    def _fail(self, message: str) -> None:
        raise SanitizerError(f"sanitizer: {message}")

    # ------------------------------------------------------------------
    # Per-request checks (cheap, O(#counters))
    # ------------------------------------------------------------------
    def after_access(self, page: int, is_write: bool) -> None:
        """Validate the state transition caused by one ``access`` call."""
        mm = self.mm
        if (mm.accounting is not self._accounting_obj
                or mm.wear is not self._wear_obj):
            # reset_accounting() swapped the counter objects (warm-up
            # boundary); this request was charged to the new epoch.
            self._rebaseline()
            self._fail_if_unrecorded(page, expected_total=1)
            self.checked_requests += 1
            return

        current = _counter_snapshot(mm.accounting)
        previous = self._counters
        for name, value in current.items():
            if value < previous[name]:
                self._fail(
                    f"counter {name} decreased "
                    f"({previous[name]} -> {value}) after page {page}"
                )
        recorded = (
            current["read_requests"] + current["write_requests"]
            - previous["read_requests"] - previous["write_requests"]
        )
        if recorded != 1:
            self._fail(
                f"access(page={page}, is_write={is_write}) called "
                f"record_request {recorded} times; the contract is "
                "exactly once per request"
            )
        direction = "write_requests" if is_write else "read_requests"
        if current[direction] != previous[direction] + 1:
            self._fail(
                f"request direction miscounted for page {page}: "
                f"is_write={is_write} but {direction} did not advance"
            )
        self._counters = current

        try:
            mm.accounting.validate()
        except ValueError as exc:
            self._fail(f"accounting inconsistent after page {page}: {exc}")

        self._check_occupancy()
        self._check_dma_identities(current)
        self._check_wear_totals(current)

        self.checked_requests += 1
        if self.checked_requests % self.deep_every == 0:
            self.check_deep()

    def _fail_if_unrecorded(self, page: int, expected_total: int) -> None:
        total = self.mm.accounting.total_requests
        if total != expected_total:
            self._fail(
                f"record_request ran {total} times for the first "
                f"request after an accounting reset (page {page})"
            )
        self._counters = _counter_snapshot(self.mm.accounting)

    def _check_occupancy(self) -> None:
        mm = self.mm
        if mm.dram.used > mm.dram.capacity:
            self._fail(
                f"DRAM over capacity: {mm.dram.used}/{mm.dram.capacity}"
            )
        if mm.nvm.used > mm.nvm.capacity:
            self._fail(
                f"NVM over capacity: {mm.nvm.used}/{mm.nvm.capacity}"
            )

    def _check_dma_identities(self, counters: dict[str, int]) -> None:
        """Model-level event counts must equal mechanical page moves."""
        faults, evictions, to_dram, to_nvm = self._dma_counts()
        base = self._dma_base
        pairs = (
            ("page fault fills",
             counters["read_faults"] + counters["write_faults"],
             faults - base[0]),
            ("evictions to disk",
             counters["clean_evictions"] + counters["dirty_evictions"],
             evictions - base[1]),
            ("migrations to DRAM", counters["migrations_to_dram"],
             to_dram - base[2]),
            ("migrations to NVM", counters["migrations_to_nvm"],
             to_nvm - base[3]),
        )
        for label, counted, moved in pairs:
            if counted != moved:
                self._fail(
                    f"{label} accounting ({counted}) disagrees with the "
                    f"DMA transfer log ({moved})"
                )

    def _check_wear_totals(self, counters: dict[str, int]) -> None:
        wear = self.mm.wear
        totals = (
            wear.fault_fill_writes, wear.migration_writes,
            wear.request_writes,
        )
        for label, now, before in zip(
            ("fault_fill_writes", "migration_writes", "request_writes"),
            totals, self._wear_totals,
        ):
            if now < before:
                self._fail(f"wear counter {label} decreased ({before} -> {now})")
        self._wear_totals = totals
        factor = wear.page_factor
        identities = (
            ("request_writes", wear.request_writes,
             counters["nvm_write_hits"]),
            ("fault_fill_writes", wear.fault_fill_writes,
             counters["faults_filled_nvm"] * factor),
            ("migration_writes", wear.migration_writes,
             counters["migrations_to_nvm"] * factor),
        )
        for label, wear_value, expected in identities:
            if wear_value != expected:
                self._fail(
                    f"wear {label} ({wear_value}) out of step with event "
                    f"accounting (expected {expected})"
                )

    # ------------------------------------------------------------------
    # Deep checks (O(resident pages); every ``deep_every`` requests)
    # ------------------------------------------------------------------
    def check_deep(self, include_policy: bool = True) -> None:
        """Full cross-layer structural validation.

        When a policy is attached, its own ``validate()`` runs too, so
        policy-internal structures (LRU queues, clock rings) are checked
        against the page table on the same cadence.
        """
        mm = self.mm
        try:
            mm.validate()
        except (AssertionError, ValueError) as exc:
            if isinstance(exc, SanitizerError):
                raise
            self._fail(f"memory manager invariants violated: {exc}")
        self._check_frames()
        self._check_page_wear()
        if include_policy and self.policy is not None:
            self.policy.validate()

    def _check_frames(self) -> None:
        """Each page holds exactly one allocated frame in exactly one tier."""
        mm = self.mm
        seen: dict[tuple[PageLocation, int], int] = {}
        for entry in mm.page_table.entries():
            if entry.location not in (PageLocation.DRAM, PageLocation.NVM):
                self._fail(
                    f"page {entry.page} resident with location "
                    f"{entry.location} (must be exactly one memory tier)"
                )
            claims = [(entry.location, entry.frame)]
            if entry.has_copy:
                if entry.location is not PageLocation.NVM:
                    self._fail(
                        f"page {entry.page} holds a DRAM copy while "
                        f"resident in {entry.location}; it would live in "
                        "two tiers at once"
                    )
                claims.append((PageLocation.DRAM, entry.copy_frame))
            for location, frame in claims:
                allocator = mm.dram if location is PageLocation.DRAM else mm.nvm
                if not allocator.is_allocated(frame):
                    self._fail(
                        f"page {entry.page} references unallocated "
                        f"{location} frame {frame}"
                    )
                owner = seen.setdefault((location, frame), entry.page)
                if owner != entry.page:
                    self._fail(
                        f"{location} frame {frame} owned by two pages "
                        f"({owner} and {entry.page})"
                    )

    def _check_page_wear(self) -> None:
        wear = self.mm.wear
        if wear is not self._wear_obj:
            self._page_writes = dict(wear.page_writes)
            return
        for page, writes in wear.page_writes.items():
            if writes < self._page_writes.get(page, 0):
                self._fail(
                    f"per-page wear decreased for page {page} "
                    f"({self._page_writes[page]} -> {writes})"
                )
        self._page_writes = dict(wear.page_writes)


class SanitizedPolicy:
    """Transparent sanitizing wrapper around a placement policy.

    Duck-types the :class:`~repro.policies.base.HybridMemoryPolicy`
    surface the simulator uses (``access``/``access_batch``/
    ``validate``/``name``) and forwards everything else to the wrapped
    policy, so tests poking policy internals keep working.
    """

    def __init__(self, policy: "HybridMemoryPolicy",
                 deep_every: int = DEFAULT_DEEP_EVERY) -> None:
        self._inner = policy
        self.sanitizer = SimulationSanitizer(
            policy.mm, deep_every=deep_every, policy=policy,
        )

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def mm(self) -> "MemoryManager":
        return self._inner.mm

    def access(self, page: int, is_write: bool) -> None:
        self._inner.access(page, is_write)
        self.sanitizer.after_access(page, is_write)

    def access_batch(self, pages: list[int], writes: list[bool]) -> None:
        """Instrumented batch kernel: check invariants after every request.

        Feeds the wrapped policy's *real* ``access_batch`` one request
        at a time, so sanitized runs (the whole test suite) exercise
        the policy's optimised batch kernel — including its inlined
        fast paths — while the per-request contract (record_request
        exactly once, counter monotonicity, DMA/wear identities) is
        still asserted between requests.  The simulator selects this
        kernel once at setup; the plain path has no sanitizer branch.
        """
        inner_batch = self._inner.access_batch
        after_access = self.sanitizer.after_access
        for page, is_write in zip(pages, writes):
            inner_batch((page,), (is_write,))
            after_access(page, is_write)

    def validate(self) -> None:  # repro: cold
        """Policy's own structural checks plus the deep sanitizer pass."""
        self._inner.validate()
        self.sanitizer.check_deep(include_policy=False)

    def __getattr__(self, attribute: str) -> object:
        return getattr(self._inner, attribute)

    def __repr__(self) -> str:
        return f"<sanitized {self._inner!r}>"
