"""Lint driver: collect files, build project context, run the rules."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.context import ProjectContext, SourceFile
from repro.analysis.findings import Finding, suppressed
from repro.analysis.rules import DEFAULT_RULES, LintRule

#: Directories never worth linting.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}

#: Per-directory rule profiles: rules listed here are not applied to
#: files under a directory of that name.  Tests exercise clocks and ad
#: hoc RNGs on purpose, define throwaway policy classes that have no
#: business in the registry or the device-constant vocabulary, and
#: probe simulator internals directly (R011 exempts them); examples
#: define demonstration policies without registering them.
PROFILES: dict[str, frozenset[str]] = {
    "tests": frozenset({"R002", "R004", "R005", "R011"}),
    "examples": frozenset({"R004"}),
}


def disabled_for(path: Path) -> frozenset[str]:
    """Rule ids the directory profiles switch off for ``path``."""
    disabled: set[str] = set()
    for part, rule_ids in PROFILES.items():
        if part in path.parts:
            disabled |= rule_ids
    return frozenset(disabled)


def rule_ids(rule: LintRule) -> frozenset[str]:
    """Every id a rule answers to: its own plus historical aliases."""
    return frozenset({rule.rule_id, *getattr(rule, "aliases", ())})


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    collected.add(candidate)
        elif path.suffix == ".py":
            collected.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(collected)


def parse_files(
    files: Iterable[Path],
) -> tuple[list[SourceFile], list[Finding]]:
    """Parse each file; unreadable/unparsable ones become R000 findings."""
    sources: list[SourceFile] = []
    errors: list[Finding] = []
    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            errors.append(Finding(
                path=str(path), line=line, col=1, rule_id="R000",
                message=f"cannot parse: {exc}",
            ))
            continue
        sources.append(SourceFile(path=path, text=text, tree=tree))
    return sources, errors


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[LintRule] | None = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the lint rules over ``paths`` and return sorted findings.

    ``select`` restricts the run to the given rule ids — aliases work,
    so ``["R001"]`` selects the R010 successor; ``rules`` substitutes
    the rule set entirely.  Directory :data:`PROFILES` switch rules off
    per file.
    """
    active = list(rules if rules is not None else DEFAULT_RULES)
    if select is not None:
        wanted = {rule_id.upper() for rule_id in select}
        active = [rule for rule in active if rule_ids(rule) & wanted]
    sources, findings = parse_files(iter_python_files(paths))
    project = ProjectContext.build(sources)
    for src in sources:
        lines = src.lines
        disabled = disabled_for(src.path)
        for rule in active:
            if rule.rule_id in disabled:
                continue
            aliases = tuple(getattr(rule, "aliases", ()))
            for finding in rule.check(src, project):
                if not suppressed(finding, lines, aliases):
                    findings.append(finding)
    return sorted(findings)
