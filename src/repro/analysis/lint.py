"""Lint driver: collect files, build project context, run the rules."""

from __future__ import annotations

import ast
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.analysis.context import ProjectContext, SourceFile
from repro.analysis.findings import Finding, canonical_id, suppressed
from repro.analysis.interproc.interproc_rules import DEEP_RULES
from repro.analysis.perf.rules import PERF_RULES
from repro.analysis.rules import DEFAULT_RULES, LintRule

#: Directories never worth linting.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}

#: Per-directory rule profiles: rules listed here are not applied to
#: files under a directory of that name.  Tests exercise clocks and ad
#: hoc RNGs on purpose, define throwaway policy classes that have no
#: business in the registry or the device-constant vocabulary, and
#: probe simulator internals directly (R011 exempts them); examples
#: define demonstration policies without registering them.  The deep
#: tier (R013-R015) is likewise scoped to ``src``: test doubles and
#: example policies deliberately poke shared state and fake kernels.
#: The perf tier (R016-R018) is likewise scoped to ``src``: test
#: fixtures and examples build throwaway objects in loops on purpose.
PROFILES: dict[str, frozenset[str]] = {
    "tests": frozenset({"R002", "R004", "R005", "R011",
                        "R013", "R014", "R015",
                        "R016", "R017", "R018"}),
    "examples": frozenset({"R004", "R013", "R014", "R015",
                           "R016", "R017", "R018"}),
}


def disabled_for(path: Path) -> frozenset[str]:
    """Rule ids the directory profiles switch off for ``path``."""
    disabled: set[str] = set()
    for part, rule_ids in PROFILES.items():
        if part in path.parts:
            disabled |= rule_ids
    return frozenset(disabled)


def rule_ids(rule: LintRule) -> frozenset[str]:
    """Every id a rule answers to: its own plus historical aliases."""
    return frozenset({rule.rule_id, *getattr(rule, "aliases", ())})


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    collected.add(candidate)
        elif path.suffix == ".py":
            collected.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(collected)


#: Parse cache keyed on the file's ``(mtime_ns, size)`` stat signature
#: — the same scheme the executor's ``code_version`` uses — so a
#: ``--deep`` run (and the project analyses hanging off the parse
#: trees) re-reads only files that changed since the previous run.
_PARSE_CACHE: dict[str, tuple[tuple[int, int], SourceFile]] = {}


def _load(path: Path) -> SourceFile:
    key = str(path)
    stat = path.stat()
    signature = (stat.st_mtime_ns, stat.st_size)
    cached = _PARSE_CACHE.get(key)
    if cached is not None and cached[0] == signature:
        return cached[1]
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=key)
    src = SourceFile(path=path, text=text, tree=tree)
    _PARSE_CACHE[key] = (signature, src)
    return src


def parse_files(
    files: Iterable[Path],
) -> tuple[list[SourceFile], list[Finding]]:
    """Parse each file; unreadable/unparsable ones become R000 findings."""
    sources: list[SourceFile] = []
    errors: list[Finding] = []
    for path in files:
        try:
            sources.append(_load(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            errors.append(Finding(
                path=str(path), line=line, col=1, rule_id="R000",
                message=f"cannot parse: {exc}",
            ))
    return sources, errors


@dataclass
class TierStats:
    """Per-tier accounting for ``--statistics``."""

    name: str
    elapsed: float
    count: int


@dataclass
class LintReport:
    """Findings plus the per-tier timings of the run that produced them."""

    findings: list[Finding]
    tiers: list[TierStats] = field(default_factory=list)

    def rule_counts(self) -> dict[str, int]:
        return dict(Counter(finding.rule_id for finding in self.findings))


def lint_report(
    paths: Sequence[str | Path],
    rules: Sequence[LintRule] | None = None,
    select: Iterable[str] | None = None,
    deep: bool = False,
    perf: bool = False,
) -> LintReport:
    """Run the lint tiers over ``paths``; findings plus tier timings.

    ``select`` restricts the run to the given rule ids — historical
    aliases resolve through :data:`~repro.analysis.findings.RULE_ALIASES`
    (``["R001"]`` selects the R010 successor) and deep/perf-tier ids
    are selectable without ``deep``/``perf``; ``rules`` substitutes the
    rule set entirely; ``deep=True`` adds the interprocedural tier
    (R013-R015) and ``perf=True`` the hot-path tier (R016-R018) to the
    default set.  Directory :data:`PROFILES` switch rules off per file.

    Files are parsed once for the whole run (shared ``_PARSE_CACHE``)
    and all tiers lint the same :class:`ProjectContext`, so a combined
    ``--deep --perf`` run builds each AST — and the interproc call
    graph hanging off it — exactly once.
    """
    # The tiers duck-type ``LintRule`` (the deep/perf rules do not
    # inherit it), so the catalogue is deliberately untyped.
    if rules is not None:
        tiers: list[tuple[str, list[Any]]] = [("custom", list(rules))]
    else:
        include_all = select is not None
        tiers = [("base", list(DEFAULT_RULES))]
        if deep or include_all:
            tiers.append(("deep", list(DEEP_RULES)))
        if perf or include_all:
            tiers.append(("perf", list(PERF_RULES)))
    if select is not None:
        wanted = {canonical_id(rule_id) for rule_id in select}
        tiers = [
            (name, [rule for rule in tier if rule_ids(rule) & wanted])
            for name, tier in tiers
        ]
        tiers = [(name, tier) for name, tier in tiers if tier]
    sources, parse_errors = parse_files(iter_python_files(paths))
    project = ProjectContext.build(sources)
    findings = list(parse_errors)
    stats: list[TierStats] = []
    for name, tier in tiers:
        started = time.perf_counter()
        tier_findings: list[Finding] = []
        for src in sources:
            lines = src.lines
            disabled = disabled_for(src.path)
            for rule in tier:
                if rule.rule_id in disabled:
                    continue
                aliases = tuple(getattr(rule, "aliases", ()))
                for finding in rule.check(src, project):
                    if not suppressed(finding, lines, aliases):
                        tier_findings.append(finding)
        stats.append(TierStats(
            name=name,
            elapsed=time.perf_counter() - started,
            count=len(tier_findings),
        ))
        findings.extend(tier_findings)
    return LintReport(findings=sorted(findings), tiers=stats)


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[LintRule] | None = None,
    select: Iterable[str] | None = None,
    deep: bool = False,
    perf: bool = False,
) -> list[Finding]:
    """Sorted findings of :func:`lint_report` (the historical API)."""
    return lint_report(
        paths, rules=rules, select=select, deep=deep, perf=perf).findings
