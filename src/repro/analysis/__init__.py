"""Static analysis and runtime sanitizing for the reproduction.

The paper's comparisons are only meaningful while every policy charges
its events through the same accounting path and every simulation is
deterministic.  This package machine-checks those contracts:

* :mod:`repro.analysis.lint` — a project-specific AST lint pass
  (``python -m repro lint``) enforcing the bookkeeping and determinism
  rules R002-R012 (see :mod:`repro.analysis.rules`).  Rules R006-R010
  are flow-sensitive dataflow analyses — units-of-measure inference,
  page life-cycle typestate and the accounting contract — built on the
  CFG/fixpoint framework of :mod:`repro.analysis.flow`.  The opt-in
  ``--deep`` tier (:mod:`repro.analysis.interproc`) adds the
  interprocedural rules R013-R015 — worker purity, sync-before-emit
  and digest stability — over a project call graph with per-function
  side-effect summaries; ``--fix`` applies the mechanical R003/R005
  rewrites (:mod:`repro.analysis.autofix`).
* :mod:`repro.analysis.sanitizer` — an opt-in runtime wrapper that
  re-validates the memory manager's invariants after every simulated
  request (``HybridMemorySimulator(..., sanitize=True)`` or the
  ``REPRO_SANITIZE=1`` environment default).
"""

from repro.analysis.autofix import fix_paths
from repro.analysis.findings import Finding
from repro.analysis.interproc import DEEP_RULES
from repro.analysis.lint import lint_paths
from repro.analysis.rules import DEFAULT_RULES, LintRule
from repro.analysis.sanitizer import (
    SANITIZE_ENV,
    SanitizedPolicy,
    SanitizerError,
    sanitize_default,
)

__all__ = [
    "DEEP_RULES",
    "DEFAULT_RULES",
    "Finding",
    "LintRule",
    "SANITIZE_ENV",
    "SanitizedPolicy",
    "SanitizerError",
    "fix_paths",
    "lint_paths",
    "sanitize_default",
]
