"""The hot-path performance rules: R016-R018.

All three are scoped to the hot regions discovered by
:mod:`repro.analysis.perf.hotpath` — code reachable from a batch
kernel, the trace filter, or the simulator drive loop.  Each finding
carries the evidence chain (seed -> call path) explaining why its
function is hot.

* **R016 (per-iteration allocation)** — a dict/list/set display,
  comprehension, f-string, or closure built inside a hot loop when it
  is loop-invariant (no free name rebound in the loop) or its value is
  discarded.  Loop-invariance is the conservative two-point lattice:
  any name bound anywhere in the loop makes every expression using it
  variant.
* **R017 (unhoisted loop-invariant lookup)** — an attribute chain
  rooted at ``self``/``cls`` (two or more attributes deep) or at a
  module import alias, resolved in the per-iteration region of a hot
  loop, when no store in the loop rebinds the root or any prefix of
  the chain.  Depth-one ``self.x`` reads and chains rooted at locals
  are deliberately not flagged — hoisting those is the idiom the
  kernels already use, and re-reading one attribute is cheap.
* **R018 (numpy scalar boxing / dtype churn)** — ``np.append``-family
  calls in a loop (each reallocates the whole array), ``float(arr[i])``
  per element (boxes a numpy scalar), and arithmetic mixing an
  int-dtype array with a float constant (every use pays an implicit
  ``astype``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ProjectContext, SourceFile
from repro.analysis.findings import Finding, aliases_of
from repro.analysis.flow.cfg import SCOPE_STMTS
from repro.analysis.interproc.callgraph import (
    FunctionInfo,
    attribute_base,
    collect_scope,
)
from repro.analysis.perf.hotpath import HotRegions, hot_regions

#: Loop statement kinds the rules iterate over.
_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_LoopNode = ast.For | ast.AsyncFor | ast.While

#: Container-mutating method names: a display assigned to a name that
#: is then mutated in the loop is a per-iteration accumulator, not a
#: hoistable constant (``row = []; row.append(...)``).
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "sort", "reverse",
    "appendleft", "popleft",
})

#: numpy functions that rebuild the whole array per call (R018).
_GROWTH_FUNCS = frozenset({
    "append", "concatenate", "vstack", "hstack", "column_stack",
    "insert", "delete",
})

#: Builtin conversions that box a numpy scalar element-wise (R018).
_BOXING_CALLS = frozenset({"float", "int", "bool", "complex"})


# ----------------------------------------------------------------------
# Shared traversal helpers
# ----------------------------------------------------------------------
def _hot_functions(
    src: SourceFile, project: ProjectContext
) -> Iterator[tuple[FunctionInfo, HotRegions]]:
    regions = hot_regions(project)
    for info in regions.functions_in(str(src.path)):
        yield info, regions


def _loops_in(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[_LoopNode]:
    """Every loop statement in ``func``, skipping nested scopes."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, SCOPE_STMTS) or isinstance(node, ast.Lambda):
            continue
        if isinstance(node, _LOOPS):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _bound_in_loop(loop: _LoopNode) -> frozenset[str]:
    """Names bound anywhere in the loop (targets, stores, defs, imports).

    The variance lattice: an expression whose free names intersect this
    set is loop-variant; everything else is invariant.
    """
    names: set[str] = set()
    stack: list[ast.AST] = list(loop.body)
    stack.extend(loop.orelse)
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        stack.append(loop.target)
    while stack:
        node = stack.pop()
        if isinstance(node, SCOPE_STMTS):
            names.add(node.name)
            continue
        if isinstance(node, ast.Name) \
                and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        stack.extend(ast.iter_child_nodes(node))
    return frozenset(names)


def _per_iteration(loop: _LoopNode) -> Iterator[tuple[ast.AST, ast.AST]]:
    """``(node, parent)`` pairs evaluated once per iteration of ``loop``.

    Excludes nested scopes' bodies (their code runs when called) and
    nested loops' per-iteration regions (those belong to the inner
    loop) — but a nested ``for``'s iterable *is* evaluated once per
    outer iteration, so it stays in.  For a ``while`` loop the test is
    part of the region; a ``for`` head's iterable is evaluated once
    and is not.
    """
    roots: list[tuple[ast.AST, ast.AST]] = [
        (stmt, loop) for stmt in loop.body]
    if isinstance(loop, ast.While):
        roots.append((loop.test, loop))
    stack = roots
    while stack:
        node, parent = stack.pop()
        if isinstance(node, (ast.For, ast.AsyncFor)):
            stack.append((node.iter, node))
            continue
        if isinstance(node, ast.While):
            continue
        yield node, parent
        if isinstance(node, SCOPE_STMTS) or isinstance(node, ast.Lambda):
            continue
        stack.extend(
            (child, node) for child in ast.iter_child_nodes(node))


def _free_names(node: ast.AST) -> frozenset[str]:
    """Names loaded anywhere under ``node`` (conservative free set)."""
    return frozenset(
        child.id for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    )


def _comp_free_names(comp: ast.expr) -> frozenset[str]:
    """Free names of a comprehension, minus its own iteration targets."""
    bound: set[str] = set()
    for gen in getattr(comp, "generators", []):
        for leaf in ast.walk(gen.target):
            if isinstance(leaf, ast.Name):
                bound.add(leaf.id)
    return _free_names(comp) - frozenset(bound)


def _closure_free_names(
    node: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef,
) -> frozenset[str]:
    """Names a closure captures from the enclosing function."""
    if isinstance(node, ast.Lambda):
        args = node.args
        params = {
            arg.arg
            for arg in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            )
        }
        stores = {
            leaf.id for leaf in ast.walk(node.body)
            if isinstance(leaf, ast.Name) and isinstance(leaf.ctx, ast.Store)
        }
        return _free_names(node.body) - frozenset(params | stores)
    local_names, _, nonlocals = collect_scope(node)
    return _free_names(node) - local_names - nonlocals - {node.name}


def _finding(
    src: SourceFile,
    node: ast.AST,
    rule_id: str,
    message: str,
    evidence: tuple[str, ...],
) -> Finding:
    return Finding(
        path=str(src.path),
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule_id=rule_id,
        message=message,
        evidence=evidence,
    )


# ----------------------------------------------------------------------
# R016 — per-iteration allocation
# ----------------------------------------------------------------------
_DISPLAYS: dict[type, str] = {
    ast.Dict: "dict literal",
    ast.List: "list literal",
    ast.Set: "set literal",
}

_COMPREHENSIONS: dict[type, str] = {
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
}


class HotLoopAllocationRule:
    """R016: hot loops must not rebuild invariant or discarded objects."""

    rule_id = "R016"
    aliases = aliases_of("R016")
    title = "hot loop rebuilds a loop-invariant or discarded object"

    def check(
        self, src: SourceFile, project: ProjectContext
    ) -> Iterator[Finding]:
        for info, regions in _hot_functions(src, project):
            evidence = regions.evidence(info.qname)
            for loop in _loops_in(info.node):
                yield from self._check_loop(src, loop, evidence)

    def _check_loop(
        self,
        src: SourceFile,
        loop: _LoopNode,
        evidence: tuple[str, ...],
    ) -> Iterator[Finding]:
        bound = _bound_in_loop(loop)
        region = list(_per_iteration(loop))
        discarded = {
            id(node.value) for node, _ in region if isinstance(node, ast.Expr)
        }
        accumulators = self._accumulator_names(region)
        for node, parent in region:
            kind, free = self._classify(node)
            if kind is None:
                continue
            invariant = not (free & bound)
            if isinstance(node, tuple(_DISPLAYS)) and invariant \
                    and self._feeds_accumulator(node, parent, accumulators):
                continue
            if invariant:
                yield _finding(
                    src, node, self.rule_id,
                    f"{kind} is rebuilt on every iteration of a hot loop "
                    "but is loop-invariant; hoist it above the loop",
                    evidence,
                )
            elif id(node) in discarded:
                yield _finding(
                    src, node, self.rule_id,
                    f"{kind} is built and immediately discarded on every "
                    "iteration of a hot loop; drop it or keep the result",
                    evidence,
                )

    @staticmethod
    def _classify(node: ast.AST) -> tuple[str | None, frozenset[str]]:
        """``(description, free names)`` for allocation candidates."""
        for kind, label in _DISPLAYS.items():
            if isinstance(node, kind):
                return label, _free_names(node)
        for kind, label in _COMPREHENSIONS.items():
            if isinstance(node, kind):
                return label, _comp_free_names(node)
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id in ("tuple", "frozenset") \
                and len(node.args) == 1 and not node.keywords \
                and isinstance(node.args[0], ast.GeneratorExp):
            return (f"{node.func.id} comprehension",
                    _comp_free_names(node.args[0]))
        if isinstance(node, ast.JoinedStr):
            return "f-string", _free_names(node)
        if isinstance(node, ast.Lambda):
            return "lambda", _closure_free_names(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return "nested function definition", _closure_free_names(node)
        return None, frozenset()

    @staticmethod
    def _accumulator_names(
        region: list[tuple[ast.AST, ast.AST]],
    ) -> frozenset[str]:
        """Names mutated in place within the loop's iteration region.

        ``row = []`` followed by ``row.append(...)`` in the same loop is
        a fresh-per-iteration accumulator — hoisting it would alias one
        object across iterations — so R016 must not flag its display.
        """
        mutated: set[str] = set()
        for node, _ in region:
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATING_METHODS \
                    and isinstance(node.func.value, ast.Name):
                mutated.add(node.func.value.id)
            elif isinstance(node, ast.Subscript) \
                    and isinstance(node.ctx, (ast.Store, ast.Del)) \
                    and isinstance(node.value, ast.Name):
                mutated.add(node.value.id)
            elif isinstance(node, ast.AugAssign) \
                    and isinstance(node.target, ast.Name):
                mutated.add(node.target.id)
        return frozenset(mutated)

    @staticmethod
    def _feeds_accumulator(
        node: ast.AST, parent: ast.AST, accumulators: frozenset[str]
    ) -> bool:
        if not isinstance(parent, ast.Assign):
            return False
        return any(
            isinstance(target, ast.Name) and target.id in accumulators
            for target in parent.targets
        )


# ----------------------------------------------------------------------
# R017 — unhoisted loop-invariant lookups
# ----------------------------------------------------------------------
class UnhoistedLookupRule:
    """R017: invariant attribute/global chains must be hoisted."""

    rule_id = "R017"
    aliases = aliases_of("R017")
    title = "hot loop re-resolves a loop-invariant attribute chain"

    def check(
        self, src: SourceFile, project: ProjectContext
    ) -> Iterator[Finding]:
        for info, regions in _hot_functions(src, project):
            evidence = regions.evidence(info.qname)
            index = regions.graph.indexes.get(info.path)
            imports = index.imports if index is not None else {}
            for loop in _loops_in(info.node):
                yield from self._check_loop(
                    src, info, loop, imports, evidence)

    def _check_loop(
        self,
        src: SourceFile,
        info: FunctionInfo,
        loop: _LoopNode,
        imports: dict[str, str],
        evidence: tuple[str, ...],
    ) -> Iterator[Finding]:
        bound = _bound_in_loop(loop)
        stores = self._stored_chains(loop)
        reported: dict[tuple[str, tuple[str, ...]], ast.Attribute] = {}
        for node, parent in _per_iteration(loop):
            if not isinstance(node, ast.Attribute) \
                    or not isinstance(node.ctx, ast.Load):
                continue
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue  # inner segment of a longer chain
            root, attrs = self._pure_chain(node)
            if root is None:
                continue
            if not self._candidate(root, attrs, info, imports):
                continue
            if self._rebound(root, attrs, stores, bound):
                continue
            key = (root, attrs)
            prior = reported.get(key)
            if prior is None or node.lineno < prior.lineno:
                reported[key] = node
        for (root, attrs), node in sorted(
            reported.items(), key=lambda item: item[1].lineno,
        ):
            chain = ".".join((root, *attrs))
            yield _finding(
                src, node, self.rule_id,
                f"`{chain}` is re-resolved on every iteration of a hot "
                "loop and never rebound; hoist it into a local before "
                "the loop",
                evidence,
            )

    @staticmethod
    def _pure_chain(node: ast.Attribute) -> tuple[str | None, tuple[str, ...]]:
        """Root and attrs of a subscript-free ``a.b.c`` chain."""
        attrs: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            attrs.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            return current.id, tuple(reversed(attrs))
        return None, ()

    @staticmethod
    def _candidate(
        root: str,
        attrs: tuple[str, ...],
        info: FunctionInfo,
        imports: dict[str, str],
    ) -> bool:
        if root in ("self", "cls") and info.cls is not None:
            return len(attrs) >= 2
        if root in imports and root not in info.local_names:
            return len(attrs) >= 1
        return False

    @staticmethod
    def _stored_chains(loop: ast.stmt) -> list[tuple[str, tuple[str, ...]]]:
        """Attribute chains assigned/deleted anywhere in the loop."""
        chains: list[tuple[str, tuple[str, ...]]] = []
        for node in ast.walk(loop):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, (ast.Attribute, ast.Subscript)):
                        root, attrs = attribute_base(leaf)
                        if root is not None:
                            chains.append((root, tuple(attrs)))
        return chains

    @staticmethod
    def _rebound(
        root: str,
        attrs: tuple[str, ...],
        stores: list[tuple[str, tuple[str, ...]]],
        bound: frozenset[str],
    ) -> bool:
        """True when any loop path may rebind the chain's resolution."""
        if root in bound:
            return True
        for sroot, sattrs in stores:
            if sroot != root:
                continue
            if len(sattrs) <= len(attrs) \
                    and sattrs == attrs[: len(sattrs)]:
                return True
        return False


# ----------------------------------------------------------------------
# R018 — numpy scalar boxing and dtype churn
# ----------------------------------------------------------------------
_INT_DTYPES = frozenset({
    "int8", "int16", "int32", "int64", "intp",
    "uint8", "uint16", "uint32", "uint64", "uintp",
})


class NumpyChurnRule:
    """R018: no per-element boxing or array reallocation on hot paths."""

    rule_id = "R018"
    aliases = aliases_of("R018")
    title = "hot path boxes numpy scalars or churns array dtypes"

    def check(
        self, src: SourceFile, project: ProjectContext
    ) -> Iterator[Finding]:
        for info, regions in _hot_functions(src, project):
            evidence = regions.evidence(info.qname)
            index = regions.graph.indexes.get(info.path)
            imports = index.imports if index is not None else {}
            numpy_roots = frozenset(
                name for name, origin in imports.items()
                if (origin == "numpy" or origin.startswith("numpy."))
                and name not in info.local_names
            )
            arrays, int_arrays = self._array_locals(info.node, numpy_roots)
            for loop in _loops_in(info.node):
                for node, _ in _per_iteration(loop):
                    if not isinstance(node, ast.Call):
                        continue
                    growth = self._growth_call(node, numpy_roots)
                    if growth is not None:
                        yield _finding(
                            src, node, self.rule_id,
                            f"`{growth}` inside a hot loop copies the "
                            "whole array every call (O(n^2) growth); "
                            "collect into a list and convert once, or "
                            "preallocate",
                            evidence,
                        )
                        continue
                    boxed = self._boxing_call(node, arrays)
                    if boxed is not None:
                        yield _finding(
                            src, node, self.rule_id,
                            f"`{boxed}` boxes a numpy scalar on every "
                            "iteration of a hot loop; vectorize the "
                            "computation or call `.item()` once outside",
                            evidence,
                        )
            for node in ast.walk(info.node):
                mixed = self._mixed_dtype_op(node, int_arrays)
                if mixed is not None:
                    yield _finding(
                        src, node, self.rule_id,
                        f"arithmetic mixes int-dtype array `{mixed}` with "
                        "a float constant, paying an implicit `astype` on "
                        "every use; cast once with `.astype(...)` outside "
                        "the hot path",
                        evidence,
                    )

    @staticmethod
    def _array_locals(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        numpy_roots: frozenset[str],
    ) -> tuple[frozenset[str], frozenset[str]]:
        """``(array-valued locals, int-dtype array locals)``.

        A name counts as array-valued when singly assigned from an
        ``np.*`` call or an ``.astype(...)`` call, or annotated as an
        ndarray parameter; int-dtype when the creating call passes an
        integer ``dtype=``.
        """
        assigned: dict[str, int] = {}
        arrays: set[str] = set()
        int_arrays: set[str] = set()
        for arg in (*func.args.posonlyargs, *func.args.args,
                    *func.args.kwonlyargs):
            annotation = arg.annotation
            text = ""
            if isinstance(annotation, ast.Name):
                text = annotation.id
            elif isinstance(annotation, ast.Attribute):
                text = annotation.attr
            elif isinstance(annotation, ast.Constant) \
                    and isinstance(annotation.value, str):
                text = annotation.value
            if "ndarray" in text:
                arrays.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Store):
                assigned[node.id] = assigned.get(node.id, 0) + 1
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if assigned.get(name, 0) != 1:
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            func_expr = value.func
            from_numpy = (
                isinstance(func_expr, ast.Attribute)
                and isinstance(func_expr.value, ast.Name)
                and func_expr.value.id in numpy_roots
            )
            from_astype = (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr == "astype"
            )
            if not (from_numpy or from_astype):
                continue
            arrays.add(name)
            for keyword in value.keywords:
                if keyword.arg != "dtype":
                    continue
                dtype = keyword.value
                dtype_name = ""
                if isinstance(dtype, ast.Attribute):
                    dtype_name = dtype.attr
                elif isinstance(dtype, ast.Name):
                    dtype_name = dtype.id
                elif isinstance(dtype, ast.Constant) \
                        and isinstance(dtype.value, str):
                    dtype_name = dtype.value
                if dtype_name in _INT_DTYPES or dtype_name == "int":
                    int_arrays.add(name)
        return frozenset(arrays), frozenset(int_arrays)

    @staticmethod
    def _growth_call(
        node: ast.Call, numpy_roots: frozenset[str]
    ) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in numpy_roots \
                and func.attr in _GROWTH_FUNCS:
            return f"{func.value.id}.{func.attr}"
        return None

    @staticmethod
    def _boxing_call(node: ast.Call, arrays: frozenset[str]) -> str | None:
        func = node.func
        if not isinstance(func, ast.Name) \
                or func.id not in _BOXING_CALLS \
                or len(node.args) != 1 or node.keywords:
            return None
        arg = node.args[0]
        if isinstance(arg, ast.Subscript) \
                and isinstance(arg.value, ast.Name) \
                and arg.value.id in arrays:
            return f"{func.id}({arg.value.id}[...])"
        return None

    @staticmethod
    def _mixed_dtype_op(
        node: ast.AST, int_arrays: frozenset[str]
    ) -> str | None:
        if not isinstance(node, ast.BinOp) or not int_arrays:
            return None
        sides = (node.left, node.right)
        array_name = next(
            (side.id for side in sides
             if isinstance(side, ast.Name) and side.id in int_arrays),
            None,
        )
        if array_name is None:
            return None
        other = node.right if isinstance(node.left, ast.Name) \
            and node.left.id == array_name else node.left
        is_float_const = (
            isinstance(other, ast.Constant)
            and isinstance(other.value, float)
        )
        is_true_div = isinstance(node.op, ast.Div) and (
            isinstance(other, ast.Constant)
            and isinstance(other.value, (int, float))
            and not isinstance(other.value, bool)
        )
        if is_float_const or is_true_div:
            return array_name
        return None


#: The perf tier, in rule-id order.
PERF_RULES = (
    HotLoopAllocationRule(),
    UnhoistedLookupRule(),
    NumpyChurnRule(),
)
