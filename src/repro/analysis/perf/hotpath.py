"""Hot-region discovery for the performance lint tier.

The perf rules (R016-R018) only pay off where code actually runs per
request or per trace record; flagging a dict literal in a config loader
would be noise.  This module decides *where* those rules look:

* **seeds** come from :meth:`CallGraph.hot_seeds` — policy ``access``/
  ``access_batch`` kernels, the trace-filter kernels, and the simulator
  drive loops;
* **closure**: everything reachable from a seed through the interproc
  call graph is hot, with the shortest call chain kept as evidence
  (seed -> ... -> function), so a finding can say *why* the function
  is on the hot path;
* **opt-out**: a ``# repro: cold`` comment on a ``def`` line removes
  the function from the hot set and stops traversal through it —
  validation passes and debug helpers called from kernels live there.

The discovery reuses the call graph and summaries built by
:func:`~repro.analysis.interproc.interproc_rules.project_analysis`, so
a combined ``--deep --perf`` run indexes the project exactly once; the
result is memoised in ``project.scratch`` for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ProjectContext
from repro.analysis.interproc.callgraph import (
    COLD_MARKER,
    CallGraph,
    FunctionInfo,
    short_chain,
)
from repro.analysis.interproc.interproc_rules import project_analysis


@dataclass
class HotRegions:
    """The per-run hot set: seeds, evidence chains, and the cold set."""

    graph: CallGraph
    seeds: dict[str, str]
    chains: dict[str, tuple[str, ...]]
    cold: frozenset[str]

    def is_hot(self, qname: str) -> bool:
        return qname in self.chains

    def functions_in(self, path: str) -> list[FunctionInfo]:
        """Hot functions defined in ``path``, in source order."""
        found = [
            info
            for qname, info in self.graph.functions.items()
            if info.path == path and qname in self.chains
        ]
        return sorted(found, key=lambda info: info.line)

    def evidence(self, qname: str) -> tuple[str, ...]:
        """Human-readable hot chain for ``qname`` (empty when cold).

        First element names the seed and why it is hot; the second (for
        non-seed functions) gives the call path from seed to function.
        """
        chain = self.chains.get(qname)
        if not chain:
            return ()
        seed = chain[0]
        reason = self.seeds.get(seed, "hot seed")
        parts = [f"hot seed {short_chain(self.graph, (seed,))}: {reason}"]
        if len(chain) > 1:
            parts.append(f"call path {short_chain(self.graph, chain)}")
        return tuple(parts)


def hot_regions(project: ProjectContext) -> HotRegions:
    """Build (or reuse) the hot-region map for this lint run."""
    cached = project.scratch.get("perf.hot")
    if isinstance(cached, HotRegions):
        return cached
    analysis = project_analysis(project)
    graph = analysis.graph
    lines_by_path = {str(src.path): src.lines for src in project.files}
    cold: set[str] = set()
    for qname, info in graph.functions.items():
        lines = lines_by_path.get(info.path)
        if lines and 1 <= info.line <= len(lines) \
                and COLD_MARKER in lines[info.line - 1]:
            cold.add(qname)
    seeds = graph.hot_seeds(sorted(project.policy_classes))
    for qname in cold:
        seeds.pop(qname, None)
    chains = graph.reachable(list(seeds), exclude=frozenset(cold))
    regions = HotRegions(
        graph=graph, seeds=seeds, chains=chains, cold=frozenset(cold))
    project.scratch["perf.hot"] = regions
    return regions
