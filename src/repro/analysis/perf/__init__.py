"""Performance lint tier: hot-region discovery, rules R016-R018, ratchet."""

from repro.analysis.perf.baseline import (
    BASELINE_VERSION,
    apply_baseline,
    baseline_key,
    load_baseline,
    write_baseline,
)
from repro.analysis.perf.hotpath import HotRegions, hot_regions
from repro.analysis.perf.rules import (
    PERF_RULES,
    HotLoopAllocationRule,
    NumpyChurnRule,
    UnhoistedLookupRule,
)

__all__ = [
    "BASELINE_VERSION",
    "apply_baseline",
    "baseline_key",
    "load_baseline",
    "write_baseline",
    "HotRegions",
    "hot_regions",
    "PERF_RULES",
    "HotLoopAllocationRule",
    "NumpyChurnRule",
    "UnhoistedLookupRule",
]
