"""Ratcheting baseline for the perf lint tier.

The ratchet lets the tier land without a flag-day cleanup: findings
present when the baseline was recorded are tolerated, anything *new*
fails the run, and ``--update-baseline`` re-records after intentional
changes.  Keys are ``(path, rule_id, message)`` with a multiplicity
count — deliberately line-number-free, so unrelated edits that shift a
tolerated finding a few lines do not break CI, while a second instance
of the same hazard in the same file still fails.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding

#: Schema version recorded in the baseline file.
BASELINE_VERSION = 1

#: One baseline key: posix-normalised path, rule id, message.
Key = tuple[str, str, str]


def baseline_key(finding: Finding) -> Key:
    return (Path(finding.path).as_posix(), finding.rule_id, finding.message)


def load_baseline(path: str | Path) -> Counter[Key]:
    """Tolerated finding counts from a baseline file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    tolerated: Counter[Key] = Counter()
    for entry in data.get("findings", []):
        key = (entry["path"], entry["rule_id"], entry["message"])
        tolerated[key] += int(entry.get("count", 1))
    return tolerated


def apply_baseline(
    findings: Sequence[Finding],
    tolerated: Counter[Key],
) -> tuple[list[Finding], int]:
    """``(new findings, suppressed count)`` after the ratchet.

    Findings arrive sorted, so when a file has both tolerated and new
    instances of one key, the earliest occurrences consume the budget
    and the later ones are reported as new.
    """
    remaining = Counter(tolerated)
    fresh: list[Finding] = []
    suppressed = 0
    for finding in findings:
        key = baseline_key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> int:
    """Record ``findings`` as the new baseline; returns the key count."""
    counts = Counter(baseline_key(finding) for finding in findings)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": key[0], "rule_id": key[1],
             "message": key[2], "count": count}
            for key, count in sorted(counts.items())
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(counts)
