"""The ``repro lint`` subcommand: run the rules, print, set exit code."""

from __future__ import annotations

import sys
from typing import Sequence, TextIO

from repro.analysis.lint import lint_paths
from repro.analysis.rules import DEFAULT_RULES


def list_rules(stream: TextIO | None = None) -> int:
    """Print the rule catalogue (``repro lint --list-rules``)."""
    stream = stream if stream is not None else sys.stdout
    for rule in DEFAULT_RULES:
        aliases = getattr(rule, "aliases", ())
        alias_note = f" (alias: {', '.join(aliases)})" if aliases else ""
        print(f"{rule.rule_id}  {rule.title}{alias_note}", file=stream)
    return 0


def run_lint(
    paths: Sequence[str],
    select: Sequence[str] | None = None,
    stream: TextIO | None = None,
) -> int:
    """Lint ``paths``; returns 0 when clean, 1 on findings, 2 on usage."""
    stream = stream if stream is not None else sys.stdout
    try:
        findings = lint_paths(paths, select=select)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render(), file=stream)
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun}", file=stream)
        return 1
    return 0
