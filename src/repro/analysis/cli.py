"""The ``repro lint`` subcommand: run the rules, print, set exit code.

Exit codes: 0 clean, 1 findings, 2 usage error *or* analyzer crash —
CI can therefore distinguish "the code has hazards" from "the linter
itself broke" and fail the right way.
"""

from __future__ import annotations

import json
import sys
import traceback
from collections import Counter
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.autofix import fix_paths
from repro.analysis.findings import Finding
from repro.analysis.interproc.interproc_rules import DEEP_RULES
from repro.analysis.lint import LintReport, lint_report
from repro.analysis.perf.baseline import (
    Key,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.perf.rules import PERF_RULES
from repro.analysis.rules import DEFAULT_RULES

#: Output formats ``run_lint`` understands.
FORMATS = ("text", "json", "github")


def list_rules(stream: TextIO | None = None) -> int:
    """Print the rule catalogue (``repro lint --list-rules``)."""
    stream = stream if stream is not None else sys.stdout
    tiers = (("", DEFAULT_RULES), (" (deep)", DEEP_RULES),
             (" (perf)", PERF_RULES))
    for tag, rules in tiers:
        for rule in rules:
            aliases = getattr(rule, "aliases", ())
            alias_note = f" (alias: {', '.join(aliases)})" if aliases else ""
            print(f"{rule.rule_id}  {rule.title}{alias_note}{tag}",
                  file=stream)
    return 0


def _render_text(findings: Sequence[Finding], stream: TextIO) -> None:
    for finding in findings:
        print(finding.render(), file=stream)
        for note in finding.evidence:
            print(f"    {note}", file=stream)
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun}", file=stream)


def _render_json(findings: Sequence[Finding], stream: TextIO) -> None:
    payload = {
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule_id": finding.rule_id,
                "message": finding.message,
                "evidence": list(finding.evidence),
            }
            for finding in findings
        ],
        "count": len(findings),
    }
    print(json.dumps(payload, indent=2), file=stream)


def _render_github(findings: Sequence[Finding], stream: TextIO) -> None:
    """GitHub Actions workflow-command annotations."""
    for finding in findings:
        message = f"{finding.rule_id} {finding.message}"
        if finding.evidence:
            message = f"{message} [{'; '.join(finding.evidence)}]"
        print(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col}::{message}",
            file=stream,
        )


_RENDERERS = {
    "text": _render_text,
    "json": _render_json,
    "github": _render_github,
}


def _render_statistics(
    report: LintReport,
    reported: Sequence[Finding],
    suppressed: int,
    stream: TextIO,
) -> None:
    """Per-tier timings and per-rule counts (``--statistics``)."""
    for tier in report.tiers:
        print(
            f"tier {tier.name}: {tier.count} finding(s) in "
            f"{tier.elapsed * 1000.0:.1f} ms",
            file=stream,
        )
    counts = Counter(finding.rule_id for finding in reported)
    for rule_id in sorted(counts):
        print(f"{rule_id}: {counts[rule_id]} finding(s)", file=stream)
    if suppressed:
        print(f"baseline: {suppressed} finding(s) tolerated", file=stream)


def run_lint(
    paths: Sequence[str],
    select: Sequence[str] | None = None,
    stream: TextIO | None = None,
    *,
    deep: bool = False,
    perf: bool = False,
    fmt: str = "text",
    fix: bool = False,
    baseline: str | None = None,
    update_baseline: bool = False,
    statistics: bool = False,
) -> int:
    """Lint ``paths``; 0 clean, 1 findings, 2 usage error or crash.

    ``deep`` adds the interprocedural tier (R013-R015), ``perf`` the
    hot-path tier (R016-R018); ``fmt`` picks the output renderer
    (``text``/``json``/``github``); ``fix`` first applies the
    mechanical R003/R005 rewrites, then lints what remains.
    ``baseline`` ratchets: findings recorded there are tolerated, new
    ones fail; ``update_baseline`` re-records and exits clean.
    ``statistics`` prints per-tier timings and per-rule counts to
    stderr, where they cannot corrupt ``json``/``github`` output.
    """
    stream = stream if stream is not None else sys.stdout
    renderer = _RENDERERS.get(fmt)
    if renderer is None:
        print(f"repro lint: unknown format {fmt!r} "
              f"(expected one of {', '.join(FORMATS)})", file=sys.stderr)
        return 2
    if update_baseline and baseline is None:
        print("repro lint: --update-baseline requires --baseline PATH",
              file=sys.stderr)
        return 2
    try:
        if fix:
            for applied in fix_paths(paths, select=select):
                print(f"fixed {applied.render()}", file=stream)
        report = lint_report(paths, select=select, deep=deep, perf=perf)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    except Exception:  # noqa — analyzer crash must not masquerade as findings
        print("repro lint: internal error in an analyzer:", file=sys.stderr)
        traceback.print_exc(file=sys.stderr)
        return 2
    findings = report.findings
    suppressed = 0
    if update_baseline:
        assert baseline is not None
        recorded = write_baseline(baseline, findings)
        print(
            f"baseline updated: {len(findings)} finding(s) over "
            f"{recorded} key(s) recorded in {baseline}",
            file=stream,
        )
        findings = []
    elif baseline is not None:
        tolerated: Counter[Key]
        if Path(baseline).exists():
            tolerated = load_baseline(baseline)
        else:
            print(f"repro lint: baseline {baseline} not found; "
                  "treating every finding as new", file=sys.stderr)
            tolerated = Counter()
        findings, suppressed = apply_baseline(findings, tolerated)
    renderer(findings, stream)
    if statistics:
        _render_statistics(report, findings, suppressed, sys.stderr)
    return 1 if findings else 0
