"""The ``repro lint`` subcommand: run the rules, print, set exit code."""

from __future__ import annotations

import json
import sys
from typing import Sequence, TextIO

from repro.analysis.autofix import fix_paths
from repro.analysis.findings import Finding
from repro.analysis.interproc.interproc_rules import DEEP_RULES
from repro.analysis.lint import lint_paths
from repro.analysis.rules import DEFAULT_RULES

#: Output formats ``run_lint`` understands.
FORMATS = ("text", "json", "github")


def list_rules(stream: TextIO | None = None) -> int:
    """Print the rule catalogue (``repro lint --list-rules``)."""
    stream = stream if stream is not None else sys.stdout
    for rule in DEFAULT_RULES:
        aliases = getattr(rule, "aliases", ())
        alias_note = f" (alias: {', '.join(aliases)})" if aliases else ""
        print(f"{rule.rule_id}  {rule.title}{alias_note}", file=stream)
    for rule in DEEP_RULES:
        aliases = getattr(rule, "aliases", ())
        alias_note = f" (alias: {', '.join(aliases)})" if aliases else ""
        print(f"{rule.rule_id}  {rule.title}{alias_note} (deep)",
              file=stream)
    return 0


def _render_text(findings: Sequence[Finding], stream: TextIO) -> None:
    for finding in findings:
        print(finding.render(), file=stream)
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun}", file=stream)


def _render_json(findings: Sequence[Finding], stream: TextIO) -> None:
    payload = {
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule_id": finding.rule_id,
                "message": finding.message,
            }
            for finding in findings
        ],
        "count": len(findings),
    }
    print(json.dumps(payload, indent=2), file=stream)


def _render_github(findings: Sequence[Finding], stream: TextIO) -> None:
    """GitHub Actions workflow-command annotations."""
    for finding in findings:
        message = f"{finding.rule_id} {finding.message}"
        print(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col}::{message}",
            file=stream,
        )


_RENDERERS = {
    "text": _render_text,
    "json": _render_json,
    "github": _render_github,
}


def run_lint(
    paths: Sequence[str],
    select: Sequence[str] | None = None,
    stream: TextIO | None = None,
    *,
    deep: bool = False,
    fmt: str = "text",
    fix: bool = False,
) -> int:
    """Lint ``paths``; returns 0 when clean, 1 on findings, 2 on usage.

    ``deep`` adds the interprocedural tier (R013-R015); ``fmt`` picks
    the output renderer (``text``/``json``/``github``); ``fix`` first
    applies the mechanical R003/R005 rewrites, then lints what remains.
    """
    stream = stream if stream is not None else sys.stdout
    renderer = _RENDERERS.get(fmt)
    if renderer is None:
        print(f"repro lint: unknown format {fmt!r} "
              f"(expected one of {', '.join(FORMATS)})", file=sys.stderr)
        return 2
    try:
        if fix:
            for applied in fix_paths(paths, select=select):
                print(f"fixed {applied.render()}", file=stream)
        findings = lint_paths(paths, select=select, deep=deep)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    renderer(findings, stream)
    return 1 if findings else 0
