"""T-III: regenerate Table III (workload characterisation).

Prints paper-scale numbers next to the synthetic traces' measured
statistics; asserts the read/write mixes match the paper's rows.
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.tables import table_iii
from repro.workloads.parsec import WORKLOAD_NAMES


def test_table_iii(benchmark, emit):
    rows = benchmark.pedantic(table_iii, rounds=1, iterations=1)
    emit(render_table(
        ["Workload", "WSS (KB, paper)", "Reads (paper)", "Writes (paper)",
         "WSS (pages, sim)", "Reads (sim)", "Writes (sim)",
         "write% paper", "write% sim"],
        [
            (
                row.workload,
                f"{row.paper_wss_kb:,}",
                f"{row.paper_reads:,}",
                f"{row.paper_writes:,}",
                f"{row.measured_wss_pages:,}",
                f"{row.measured_reads:,}",
                f"{row.measured_writes:,}",
                f"{100 * row.paper_write_ratio:.1f}",
                f"{100 * row.measured_write_ratio:.1f}",
            )
            for row in rows
        ],
        title="Table III: Workload Characterization (paper vs synthetic)",
    ))
    assert [row.workload for row in rows] == list(WORKLOAD_NAMES)
    for row in rows:
        # write mix within 8 percentage points of the paper's row
        assert row.write_ratio_error < 8.0, row.workload
    by_name = {row.workload: row for row in rows}
    # the qualitative extremes the paper highlights
    assert by_name["blackscholes"].measured_writes == 0
    assert by_name["streamcluster"].measured_write_ratio < 0.02
    assert by_name["vips"].measured_write_ratio > 0.35
    # footprint ordering is preserved by scaling (largest: dedup)
    assert by_name["dedup"].measured_wss_pages == max(
        row.measured_wss_pages for row in rows
    )
