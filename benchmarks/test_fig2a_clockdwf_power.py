"""F-2a: regenerate Fig. 2a — CLOCK-DWF power normalised to DRAM-only.

Shape claims (paper Section III-A):
* the hybrid's static power drops to ~20% of the DRAM-only static
  (the 80% static saving),
* CLOCK-DWF still loses outright (normalised power > 1) on the
  migration-hostile workloads — canneal, fluidanimate, streamcluster,
* migrations contribute over 40% of CLOCK-DWF's power in many
  workloads.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure_1, figure_2a
from repro.experiments.report import render_figure
from repro.experiments.results import GEO_MEAN_LABEL


def test_fig2a(benchmark, runner, emit):
    figure = benchmark.pedantic(
        lambda: figure_2a(runner), rounds=1, iterations=1
    )
    emit(render_figure(figure))

    totals = figure.totals()
    # the migration-hostile workloads end up worse than DRAM-only
    for name in ("canneal", "fluidanimate", "streamcluster"):
        assert totals[name] > 1.0, name

    # 80% static saving: the hybrid burns ~20% of the DRAM-only
    # background power per unit time (the per-request static term can
    # still grow where migrations stretch the run).
    spec = runner.workload("dedup").spec
    assert spec.static_power == pytest.approx(
        0.19 * spec.as_dram_only().static_power, rel=0.15
    )
    # per request, the static term shrinks wherever migrations do not
    # dominate the run time
    dram_figure = figure_1(runner)
    for bar in figure.bars:
        if bar.label in (GEO_MEAN_LABEL, "A-Mean"):
            continue
        if bar.segments["Migration"] / bar.total > 0.4:
            continue  # migration-stretched runs burn static for longer
        dram_static = next(
            b.segments["Static"] for b in dram_figure.bars
            if b.label == bar.label
        )
        assert bar.segments["Static"] < 0.6 * dram_static + 0.05, bar.label

    # migrations are a major power component in many workloads
    migration_heavy = [
        bar.label for bar in figure.bars
        if bar.label not in (GEO_MEAN_LABEL, "A-Mean")
        and bar.segments["Migration"] / bar.total > 0.4
    ]
    assert len(migration_heavy) >= 4
