"""T-IV: regenerate Table IV (memory characteristics).

Definitional: the table must print exactly the paper's constants.
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.tables import table_iv
from repro.memory.devices import dram_spec, pcm_spec


def test_table_iv(benchmark, emit):
    rows = benchmark(table_iv)
    emit(render_table(
        ["Memory", "Latency r/w (ns)", "Power r/w (nJ)",
         "Static Power (J/GB.s)"],
        rows,
        title="Table IV: Memory Characteristics",
    ))
    assert rows[0] == ("DRAM", "50/50", "3.2/3.2", "1")
    assert rows[1] == ("NVM (PCM)", "100/350", "6.4/32.0", "0.1")
    # the relationships the paper's argument rests on
    import pytest

    assert pcm_spec().write_latency == pytest.approx(
        7 * dram_spec().write_latency
    )
    assert pcm_spec().write_energy == pytest.approx(
        10 * dram_spec().write_energy
    )
    assert pcm_spec().static_power_per_gb == pytest.approx(
        dram_spec().static_power_per_gb / 10
    )
