"""T-II: regenerate Table II (COTSon configuration) and demonstrate the
substitute hierarchy actually filtering a multi-core CPU trace."""

from __future__ import annotations

from repro.cpu.filter import filter_trace
from repro.cpu.hierarchy import cotson_hierarchy
from repro.cpu.multicore import synthesize_cpu_trace
from repro.experiments.report import render_table
from repro.experiments.tables import table_ii


def test_table_ii_configuration(benchmark, emit):
    rows = benchmark(table_ii)
    emit(render_table(["Component", "Configuration"], rows,
                      title="Table II: COTSon Configuration (substitute)"))
    config = dict(rows)
    assert "4-core" in config["CPU"]
    assert config["L1 Data Cache"].startswith("32KB WB 4-way")
    assert config["Last-Level Cache"].startswith("2MB WB 16-way")
    assert "64B line" in config["L1 Instruction Cache"]


def test_hierarchy_filters_cpu_trace(benchmark, emit):
    """The COTSon role: CPU accesses in, main-memory accesses out."""
    cpu_trace = synthesize_cpu_trace(
        shared_pages=2048, private_pages=128, requests=120_000,
        cores=4, write_ratio=0.3, seed=42,
    )

    def run():
        hierarchy = cotson_hierarchy()
        memory = filter_trace(cpu_trace, hierarchy)
        return hierarchy, memory

    hierarchy, memory = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = hierarchy.stats
    emit(render_table(
        ["Metric", "Value"],
        [
            ("CPU accesses", f"{stats.cpu_accesses:,}"),
            ("L1 hits", f"{stats.l1_hits:,}"),
            ("LLC hits", f"{stats.llc_hits:,}"),
            ("Memory reads", f"{stats.memory_reads:,}"),
            ("Memory writes (write-backs)", f"{stats.memory_writes:,}"),
            ("Coherence invalidations",
             f"{stats.coherence_invalidations:,}"),
            ("Filter ratio", f"{stats.llc_filter_ratio:.3f}"),
            ("Post-LLC write ratio", f"{memory.write_ratio:.3f}"),
        ],
        title="Cache hierarchy filtering (quad-core, Table II geometry)",
    ))
    # the hierarchy must absorb a meaningful share of the traffic and
    # convert stores into eviction-time write-backs
    assert stats.llc_filter_ratio > 0.2
    assert memory.write_ratio < 0.3
    assert len(memory) == stats.memory_accesses
