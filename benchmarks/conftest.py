"""Shared benchmark fixtures.

All figure benchmarks draw on one session-scoped
:class:`~repro.experiments.runner.ExperimentRunner` at the default
evaluation scale, so the 12-workload x 4-policy grid is simulated once
and every figure is derived from the same cached runs (exactly how the
paper's evaluation works).
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure: regenerates a paper figure/table"
    )


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture(scope="session")
def emit():
    """Print through pytest's capture with surrounding blank lines."""
    def _emit(text: str) -> None:
        print()
        print(text)
    return _emit
