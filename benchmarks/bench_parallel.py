#!/usr/bin/env python3
"""Serial vs parallel wall-clock on the fig-4 grid -> BENCH_parallel.json.

Runs the figure-4 workload x policy grid (12 PARSEC workloads x the
four core policies) twice through the executor — once with one worker,
once with ``--jobs N`` — with the persistent cache disabled so both
passes really simulate, and reports the wall-clock ratio.

The grid is embarrassingly parallel (48 independent simulations), so
on an M-core machine the expected speedup approaches min(N, M).  The
emitted JSON records the machine's core count so results from
single-core runners are interpretable.

Run:  python benchmarks/bench_parallel.py [--fast] [--jobs N]
                                          [--output BENCH_parallel.json]
"""

import argparse
import json
import os
import time

from repro.experiments.executor import ParallelExecutor
from repro.experiments.runner import CORE_POLICIES
from repro.experiments.runspec import RunSpec
from repro.workloads.parsec import WORKLOAD_NAMES

#: Reduced rendering scale for --fast (CI smoke runs).
FAST_SCALE = dict(request_scale=1 / 2000, footprint_scale=1 / 128)


def grid_specs(fast: bool) -> list[RunSpec]:
    scale = FAST_SCALE if fast else {}
    return [
        RunSpec.core(workload, policy, **scale)
        for workload in WORKLOAD_NAMES
        for policy in CORE_POLICIES
    ]


def timed_submit(specs: list[RunSpec], jobs: int) -> tuple[float, dict]:
    executor = ParallelExecutor(jobs=jobs, cache=None)
    started = time.perf_counter()
    executor.submit(specs)
    elapsed = time.perf_counter() - started
    return elapsed, executor.stats.as_dict()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced trace scale (CI smoke run)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel worker count (default: all CPUs)")
    parser.add_argument("--output", default="BENCH_parallel.json",
                        help="result file (default: BENCH_parallel.json)")
    args = parser.parse_args()

    cpus = os.cpu_count() or 1
    jobs = args.jobs if args.jobs is not None else cpus
    specs = grid_specs(args.fast)
    print(f"fig-4 grid: {len(specs)} runs "
          f"({len(WORKLOAD_NAMES)} workloads x {len(CORE_POLICIES)} "
          f"policies), {cpus} CPU(s)")

    serial_s, serial_stats = timed_submit(specs, jobs=1)
    print(f"serial (1 worker):     {serial_s:8.2f}s")
    parallel_s, parallel_stats = timed_submit(specs, jobs=jobs)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"parallel ({jobs} worker(s)): {parallel_s:8.2f}s   "
          f"speedup {speedup:.2f}x")

    payload = {
        "benchmark": "parallel-executor-fig4-grid",
        "fast": args.fast,
        "cpu_count": cpus,
        "jobs": jobs,
        "grid_size": len(specs),
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "serial_stats": serial_stats,
        "parallel_stats": parallel_stats,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
