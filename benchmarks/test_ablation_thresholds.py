"""A-1: promotion-threshold sweep (paper Section V-B).

The paper observes that raytrace's optimal thresholds differ from the
other workloads': its burst lengths sit right at the default threshold,
so promotions fire for pages that are already done being hot.  Sweeping
the thresholds regenerates that trade-off: low thresholds flood the
system with migrations, high thresholds strand hot pages in NVM.
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.sweep import threshold_sweep

THRESHOLDS = (1, 2, 4, 8, 16, 32, 64)


def test_threshold_sweep_raytrace(benchmark, emit):
    points = benchmark.pedantic(
        lambda: threshold_sweep("raytrace", thresholds=THRESHOLDS),
        rounds=1, iterations=1,
    )
    emit(render_table(
        ["read_threshold", "memory time (ns)", "APPR (nJ)",
         "promotions", "demotions", "NVM writes"],
        [
            (
                int(point.value),
                f"{point.memory_time_ns:.1f}",
                f"{point.appr_nj:.2f}",
                point.migrations_to_dram,
                point.migrations_to_nvm,
                f"{point.nvm_writes:,}",
            )
            for point in points
        ],
        title="A-1: threshold sweep on raytrace (write thr = read/2)",
    ))
    by_threshold = {int(point.value): point for point in points}
    # migrations decrease monotonically-ish with the threshold
    assert by_threshold[1].migrations_to_dram > \
        by_threshold[16].migrations_to_dram > \
        by_threshold[64].migrations_to_dram
    # an eager threshold is strictly worse than a tuned one on both
    # axes for this burst-heavy workload
    tuned = min(points, key=lambda point: point.memory_time_ns)
    assert by_threshold[1].memory_time_ns > tuned.memory_time_ns
    assert by_threshold[1].appr_nj > tuned.appr_nj
    # raytrace's optimum is *not* the default 16 (Section V-B: "the
    # optimal values ... differ from the other workloads")
    assert int(tuned.value) > 16


def test_threshold_sweep_dedup(benchmark, emit):
    """On a well-behaved hot-set workload the default threshold is
    already near the optimum."""
    points = benchmark.pedantic(
        lambda: threshold_sweep("dedup", thresholds=THRESHOLDS),
        rounds=1, iterations=1,
    )
    emit(render_table(
        ["read_threshold", "memory time (ns)", "APPR (nJ)", "promotions"],
        [
            (int(point.value), f"{point.memory_time_ns:.1f}",
             f"{point.appr_nj:.2f}", point.migrations_to_dram)
            for point in points
        ],
        title="A-1b: threshold sweep on dedup",
    ))
    by_threshold = {int(point.value): point for point in points}
    tuned = min(points, key=lambda point: point.memory_time_ns)
    # the default (16) performs within 25% of the sweep optimum
    assert by_threshold[16].memory_time_ns < 1.25 * tuned.memory_time_ns
