"""Throughput micro-benchmarks for the simulator's hot paths.

Not a paper artifact — these quantify the cost of the core data
structures (the windowed LRU queue, the policy access path, the cache
filter) so performance regressions in the simulator itself are caught.
"""

from __future__ import annotations

import numpy as np

from repro.core.lru import LRUQueue
from repro.memory.specs import HybridMemorySpec
from repro.mmu.manager import MemoryManager
from repro.policies.registry import policy_factory
from repro.workloads.synthetic import zipf_workload


def test_lru_queue_touch_throughput(benchmark):
    queue = LRUQueue()
    queue.add_window(100, on_exit=lambda node: None)
    for page in range(1000):
        queue.push_front(page)
    rng = np.random.default_rng(0)
    pages = rng.integers(0, 1000, 10_000).tolist()

    def touch_many():
        touch = queue.touch
        for page in pages:
            touch(page)

    benchmark(touch_many)
    queue.check()


def test_proposed_policy_access_throughput(benchmark):
    trace = zipf_workload(pages=2000, requests=50_000, seed=1)
    spec = HybridMemorySpec.for_footprint(trace.unique_pages)
    pairs = list(trace.iter_pairs())

    def run_policy():
        policy = policy_factory("proposed")(MemoryManager(spec))
        access = policy.access
        for page, is_write in pairs:
            access(page, is_write)
        return policy

    policy = benchmark.pedantic(run_policy, rounds=3, iterations=1)
    assert policy.mm.accounting.total_requests == len(pairs)


def test_clock_dwf_access_throughput(benchmark):
    trace = zipf_workload(pages=2000, requests=50_000, seed=1)
    spec = HybridMemorySpec.for_footprint(trace.unique_pages)
    pairs = list(trace.iter_pairs())

    def run_policy():
        policy = policy_factory("clock-dwf")(MemoryManager(spec))
        access = policy.access
        for page, is_write in pairs:
            access(page, is_write)
        return policy

    policy = benchmark.pedantic(run_policy, rounds=3, iterations=1)
    assert policy.mm.accounting.total_requests == len(pairs)
