"""A-2: counter-window (readperc/writeperc) size sweep.

Section IV motivates keeping counters only for the top positions of the
NVM queue: a whole-queue window lets slowly-cycling cold pages
accumulate counters and triggers non-beneficial promotions; a tiny
window misses genuinely hot pages.  The sweep regenerates that
trade-off.
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.sweep import window_sweep

FRACTIONS = (0.02, 0.05, 0.1, 0.2, 0.5, 1.0)


def test_window_sweep(benchmark, emit):
    points = benchmark.pedantic(
        lambda: window_sweep("fluidanimate", fractions=FRACTIONS),
        rounds=1, iterations=1,
    )
    emit(render_table(
        ["read window", "memory time (ns)", "APPR (nJ)", "promotions",
         "NVM writes"],
        [
            (f"{point.value:.2f}", f"{point.memory_time_ns:.1f}",
             f"{point.appr_nj:.2f}", point.migrations_to_dram,
             f"{point.nvm_writes:,}")
            for point in points
        ],
        title="A-2: counter-window sweep on fluidanimate",
    ))
    by_fraction = {point.value: point for point in points}
    # the whole-queue window admits more promotions than a tight one:
    # sweep pages survive long enough in a big window to hit the
    # threshold even though they will not be reused before cooling
    assert by_fraction[1.0].migrations_to_dram >= \
        by_fraction[0.02].migrations_to_dram
    # all window sizes keep the policy functional
    for point in points:
        assert point.memory_time_ns > 0
