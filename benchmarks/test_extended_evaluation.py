"""Extended evaluation beyond the paper's figures.

E-1  Grand policy comparison: every hybrid policy (including the two
     extra baselines from the paper's related-work discussion — PDRAM
     and the DRAM-cache architecture) on three representative
     workloads.
E-2  Multi-programmed mixes: the proposed scheme's advantage must
     survive workload consolidation.
E-3  Sizing rule: the MRC machinery versus the 75 % capacity rule.
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.mmu.simulator import simulate
from repro.policies.registry import policy_factory
from repro.trace.mrc import miss_ratio_curve
from repro.workloads.mix import mix_workloads

POLICIES = ("proposed", "adaptive", "clock-dwf", "pdram", "dram-cache",
            "never-migrate", "static-partition")
WORKLOADS = ("bodytrack", "canneal", "x264")


def test_grand_policy_comparison(benchmark, runner, emit):
    cells = [(workload, policy)
             for workload in WORKLOADS for policy in POLICIES]

    def run_grid():
        results = runner.submit([runner.spec_for(workload, policy)
                                 for workload, policy in cells])
        return dict(zip(cells, results))

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    baselines = dict(zip(WORKLOADS, runner.submit(
        [runner.spec_for(workload, "dram-only") for workload in WORKLOADS])))
    rows = []
    for workload in WORKLOADS:
        base = baselines[workload]
        for policy in POLICIES:
            run = grid[(workload, policy)]
            rows.append((
                workload,
                policy,
                f"{run.performance.memory_time * 1e9:.1f}",
                f"{run.power.appr / base.power.appr:.2f}",
                f"{run.hit_ratio:.4f}",
                f"{run.accounting.migrations:,}",
                f"{run.nvm_writes.total:,}",
            ))
    emit(render_table(
        ["workload", "policy", "mem time (ns)", "power vs DRAM",
         "hit ratio", "migrations", "NVM writes"],
        rows,
        title="E-1: all hybrid policies (power normalised to DRAM-only)",
    ))

    for workload in WORKLOADS:
        times = {
            policy: grid[(workload, policy)].performance.memory_time
            for policy in POLICIES
        }
        best = min(times.values())
        # the proposed scheme always beats CLOCK-DWF and the DRAM cache
        assert times["proposed"] < times["clock-dwf"], workload
        assert times["proposed"] < times["dram-cache"], workload
        # on well-behaved workloads it is at or near the front; on the
        # high-miss canneal its all-faults-to-DRAM rule pays a demotion
        # per fault and PDRAM's fill-NVM-directly fault path wins — an
        # honest limitation of the paper's design that this extended
        # comparison surfaces (see EXPERIMENTS.md)
        limit = 2.6 if workload == "canneal" else 1.35
        assert times["proposed"] <= limit * best, workload
        # the DRAM cache pays for inclusion: never the best
        assert times["dram-cache"] > best, workload
        # hit ratios: migration policies keep LRU-level hit ratios;
        # the inclusive cache gives some capacity away
        hits = {
            policy: grid[(workload, policy)].hit_ratio
            for policy in POLICIES
        }
        assert hits["dram-cache"] <= hits["proposed"] + 1e-9, workload


def test_multiprogram_mix(benchmark, emit):
    scale = dict(request_scale=1 / 1000, footprint_scale=1 / 128)

    def run_mix():
        mix = mix_workloads(("bodytrack", "vips", "canneal"), **scale)
        results = {}
        for policy in ("dram-only", "clock-dwf", "proposed"):
            spec = mix.spec
            if policy == "dram-only":
                spec = spec.as_dram_only()
            results[policy] = simulate(
                mix.trace, spec, policy_factory(policy),
                inter_request_gap=mix.inter_request_gap,
                warmup_fraction=mix.warmup_fraction,
            )
        return mix, results

    mix, results = benchmark.pedantic(run_mix, rounds=1, iterations=1)
    base = results["dram-only"]
    emit(render_table(
        ["policy", "mem time (ns)", "power vs DRAM", "hit ratio",
         "migrations"],
        [
            (
                policy,
                f"{run.performance.memory_time * 1e9:.1f}",
                f"{run.power.appr / base.power.appr:.2f}",
                f"{run.hit_ratio:.4f}",
                f"{run.accounting.migrations:,}",
            )
            for policy, run in results.items()
        ],
        title=f"E-2: consolidated mix {mix.name}",
    ))
    proposed, dwf = results["proposed"], results["clock-dwf"]
    assert proposed.performance.memory_time < dwf.performance.memory_time
    assert proposed.power.appr < dwf.power.appr


def test_sizing_rule_mrc(benchmark, runner, emit):
    def analyse():
        instance = runner.workload("x264")
        curve = miss_ratio_curve(instance.trace, sample_cap=120_000)
        return instance, curve

    instance, curve = benchmark.pedantic(analyse, rounds=1, iterations=1)
    emit(render_table(
        ["capacity (pages)", "capacity (% footprint)", "LRU miss ratio"],
        [
            (capacity,
             f"{100 * capacity / instance.trace.unique_pages:.0f}%",
             f"{miss:.4f}")
            for capacity, miss in zip(curve.capacities, curve.miss_ratios)
        ],
        title="E-3: x264 miss-ratio curve vs the 75% sizing rule",
    ))
    rule_capacity = instance.spec.total_pages
    # the paper's rule sits past the curve's knee: the miss ratio at
    # 75% is within a small delta of the full-footprint floor...
    assert curve.miss_ratio_at(rule_capacity) < \
        curve.compulsory_miss_ratio + 0.05
    # ...while a quarter of the capacity would hurt noticeably
    assert curve.miss_ratio_at(rule_capacity // 4) > \
        curve.miss_ratio_at(rule_capacity)
