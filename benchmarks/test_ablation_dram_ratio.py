"""A-3: DRAM share of the hybrid memory.

The paper fixes DRAM at 10% of the memory (Section V-A).  Sweeping the
split quantifies the trade: more DRAM buys faster service and fewer
migrations, but burns 10x the background power per byte.
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.sweep import dram_ratio_sweep

RATIOS = (0.05, 0.1, 0.2, 0.3, 0.5)


def test_dram_ratio_sweep(benchmark, emit):
    points = benchmark.pedantic(
        lambda: dram_ratio_sweep("x264", ratios=RATIOS),
        rounds=1, iterations=1,
    )
    emit(render_table(
        ["DRAM share", "memory time (ns)", "APPR (nJ)", "promotions",
         "NVM writes"],
        [
            (f"{point.value:.2f}", f"{point.memory_time_ns:.1f}",
             f"{point.appr_nj:.2f}", point.migrations_to_dram,
             f"{point.nvm_writes:,}")
            for point in points
        ],
        title="A-3: DRAM-fraction sweep on x264 (paper uses 0.10)",
    ))
    by_ratio = {point.value: point for point in points}
    # more DRAM means faster memory service...
    assert by_ratio[0.5].memory_time_ns < by_ratio[0.05].memory_time_ns
    # ...and fewer NVM writes (more of the write set fits in DRAM)
    assert by_ratio[0.5].nvm_writes < by_ratio[0.05].nvm_writes
