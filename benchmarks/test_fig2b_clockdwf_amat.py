"""F-2b: regenerate Fig. 2b — CLOCK-DWF AMAT normalised to DRAM-only.

Shape claims (paper Section III-B):
* migrations dominate CLOCK-DWF's AMAT — more than 60% of the total on
  the heavy workloads and around half on average,
* normalised AMAT is well above 1 everywhere, with multi-10x outliers
  (the paper prints 10.86 ... 29.64 overflow labels).
"""

from __future__ import annotations

from repro.experiments.figures import figure_2b
from repro.experiments.report import render_figure
from repro.experiments.results import ARITH_MEAN_LABEL, GEO_MEAN_LABEL


def test_fig2b(benchmark, runner, emit):
    figure = benchmark.pedantic(
        lambda: figure_2b(runner), rounds=1, iterations=1
    )
    emit(render_figure(figure))

    workload_bars = [
        bar for bar in figure.bars
        if bar.label not in (GEO_MEAN_LABEL, ARITH_MEAN_LABEL)
    ]
    totals = {bar.label: bar.total for bar in workload_bars}
    migration_share = {
        bar.label: bar.segments["Migrations"] / bar.total
        for bar in workload_bars
    }

    # hybrid AMAT never beats DRAM-only (hits are slower, migrations
    # cost extra) and is far worse on the write-scattered workloads
    assert all(total > 0.9 for total in totals.values())
    assert max(totals.values()) > 10.0  # the paper's overflow outliers
    assert sorted(totals.values())[-3] > 4.0

    # migrations dominate on the heavy workloads...
    heavy = [name for name, share in migration_share.items()
             if share > 0.6]
    assert len(heavy) >= 5
    # ...and account for a large share on (arithmetic) average
    mean_share = sum(migration_share.values()) / len(migration_share)
    assert mean_share > 0.45
