#!/usr/bin/env python3
"""Sampled-engine throughput and accuracy -> BENCH_sampling.json.

Three measurements, one gate:

* **Accuracy** — the Fig. 4 operating point (proposed policy over the
  benchmark workloads) evaluated exactly (``engine="simulate"``) and
  with the 1-in-K sampled engine; per-workload relative errors on
  AMAT, APPR and total NVM writes.
* **Throughput** — engine-only wall-clock of the exact replay vs the
  sampled replay on a pre-rendered workload instance (rendering is a
  cost both engines share), with interval estimation off
  (``groups=1``) so the gate measures the estimator, not its
  diagnostics.  The aggregate speedup counts only runs the engine
  actually sampled: workloads whose fault counts force the
  ``min_faults`` escalation down to exact replay (streamcluster at
  this scale) are reported but excluded.
* **Interval calibration** — the same cells re-run with the default
  replicate groups, reporting each metric's relative half-width and
  whether the exact value fell inside the interval (report-only: one
  draw per cell is a coverage sample, not a coverage estimate).

The **gate** fails (exit 1) when the mean relative error, the worst
relative error, or the aggregate sampled speedup crosses its floor.

Run:  python benchmarks/bench_sampling.py [--fast] [--reps N]
                                          [--output BENCH_sampling.json]
                                          [--no-gate]
"""

import argparse
import gc
import json
import os
import platform
import sys
import time
from dataclasses import replace

from repro.experiments.runspec import RunSpec
from repro.sampling import SamplingConfig

#: Benchmark grid: the six workloads spanning the accuracy spectrum —
#: large/faulty (dedup, canneal), composition-sensitive (bodytrack,
#: vips, freqmine) and the sparse-fault escalation case
#: (streamcluster).
WORKLOADS = ("dedup", "canneal", "bodytrack", "freqmine", "vips",
             "streamcluster")
POLICY = "proposed"

#: 1-in-K sampling rate the ISSUE/ROADMAP throughput target quotes.
RATE = 16

#: Operating points: full (local measurement) runs the calibrated
#: contract point — full footprints, 2% of the requests — while
#: --fast (CI smoke) keeps the default figure-grid footprint so the
#: smoke stays cheap.
FULL_SCALE = 0.02
FULL_FOOTPRINT = 1.0
FAST_SCALE = 0.005
FAST_FOOTPRINT = 1.0 / 64.0

#: Gate floors.  Full scale carries the contract (>= 10x at 1/16 with
#: <= 2% mean / <= 10% max error).  The fast traces are 4x shorter:
#: most cells' fault counts drop under ``min_faults`` and escalate to
#: exact replay (zero error, no speedup — exercising the adaptation
#: path), while canneal keeps enough faults to genuinely sample at
#: 1/4, so the smoke floors are calibrated to that one sampled cell.
FULL_FLOORS = {"speedup": 10.0, "mean_error": 0.02, "max_error": 0.10}
FAST_FLOORS = {"speedup": 1.3, "mean_error": 0.02, "max_error": 0.05}

#: Error metrics the gate scores, as RunResult accessors.
METRICS = ("amat", "appr", "nvm_writes")


def _metric(result, name: str) -> float:
    if name == "amat":
        return result.performance.amat
    if name == "appr":
        return result.power.appr
    return float(result.nvm_writes.total)


def timed(fn, reps: int) -> float:
    """Best-of-``reps`` wall-clock of ``fn()`` with the GC paused."""
    best = float("inf")
    for _ in range(reps):
        gc.collect()
        gc.disable()
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
        gc.enable()
    return best


def bench_cells(scale: float, footprint: float,
                reps: int) -> tuple[list, dict]:
    """Per-workload accuracy + engine-only throughput rows."""
    cells = []
    sampled_exact_seconds = 0.0
    sampled_seconds = 0.0
    for workload in WORKLOADS:
        exact_spec = RunSpec.core(workload, POLICY, request_scale=scale,
                                  footprint_scale=footprint)
        sampled_spec = replace(
            exact_spec, engine="sampled",
            sampling=SamplingConfig(rate=RATE, groups=1),
        )
        instance = exact_spec.render()
        exact = exact_spec.execute(instance=instance)
        sampled = sampled_spec.execute(instance=instance)
        exact_t = timed(lambda s=exact_spec, i=instance:
                        s.execute(instance=i), reps)
        sampled_t = timed(lambda s=sampled_spec, i=instance:
                          s.execute(instance=i), reps)
        errors = {
            name: abs(_metric(sampled, name) - _metric(exact, name))
            / abs(_metric(exact, name))
            for name in METRICS
        }
        effective_rate = sampled.sampling.effective_rate
        speedup = exact_t / sampled_t
        if effective_rate > 1:
            sampled_exact_seconds += exact_t
            sampled_seconds += sampled_t
        print(f"  {workload:14s} 1/{effective_rate:<3d} "
              f"amat {errors['amat']:6.2%}  appr {errors['appr']:6.2%}  "
              f"nvm {errors['nvm_writes']:6.2%}  speedup {speedup:5.1f}x"
              + ("  (escalated to exact)" if effective_rate == 1 else ""))
        cells.append({
            "workload": workload,
            "policy": POLICY,
            "requests": int(len(instance.trace)),
            "effective_rate": effective_rate,
            "sampled_pages": sampled.sampling.sampled_pages,
            "total_pages": sampled.sampling.total_pages,
            "amat_relative_error": round(errors["amat"], 5),
            "appr_relative_error": round(errors["appr"], 5),
            "nvm_writes_relative_error": round(errors["nvm_writes"], 5),
            "exact_seconds": round(exact_t, 4),
            "sampled_seconds": round(sampled_t, 4),
            "speedup": round(speedup, 2),
        })
    all_errors = [cell[f"{name}_relative_error"]
                  for cell in cells for name in METRICS]
    aggregate = {
        "mean_relative_error": round(sum(all_errors) / len(all_errors), 5),
        "max_relative_error": round(max(all_errors), 5),
        "sampled_cells": sum(1 for c in cells if c["effective_rate"] > 1),
        "aggregate_speedup": round(
            sampled_exact_seconds / sampled_seconds, 2
        ) if sampled_seconds else 0.0,
    }
    print(f"  mean error {aggregate['mean_relative_error']:.2%}, "
          f"max {aggregate['max_relative_error']:.2%}, aggregate speedup "
          f"{aggregate['aggregate_speedup']:.1f}x over "
          f"{aggregate['sampled_cells']} sampled cell(s)")
    return cells, aggregate


def calibrate_intervals(scale: float, footprint: float) -> list:
    """Replicate-interval half-widths and single-draw coverage."""
    rows = []
    for workload in WORKLOADS:
        exact_spec = RunSpec.core(workload, POLICY, request_scale=scale,
                                  footprint_scale=footprint)
        sampled_spec = replace(
            exact_spec, engine="sampled", sampling=SamplingConfig(rate=RATE),
        )
        instance = exact_spec.render()
        exact = exact_spec.execute(instance=instance)
        summary = sampled_spec.execute(instance=instance).sampling
        row = {"workload": workload,
               "effective_rate": summary.effective_rate,
               "groups": summary.groups}
        for name, interval in sorted(summary.intervals.items()):
            truth = _metric(exact, name)
            row[name] = {
                "relative_half_width": round(
                    interval.relative_half_width, 5),
                "covered": bool(interval.lo <= truth <= interval.hi),
            }
        rows.append(row)
    covered = sum(1 for row in rows for name in METRICS
                  if isinstance(row.get(name), dict)
                  and row[name]["covered"])
    total = sum(1 for row in rows for name in METRICS
                if isinstance(row.get(name), dict))
    print(f"  {covered}/{total} intervals covered the exact value")
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced scale (CI smoke run)")
    parser.add_argument("--reps", type=int, default=2, metavar="N",
                        help="best-of-N timing repetitions (default 2)")
    parser.add_argument("--output", default="BENCH_sampling.json",
                        help="result file (default: BENCH_sampling.json)")
    parser.add_argument("--no-gate", action="store_true",
                        help="measure and report only; skip the gate")
    args = parser.parse_args()

    scale = FAST_SCALE if args.fast else FULL_SCALE
    footprint = FAST_FOOTPRINT if args.fast else FULL_FOOTPRINT
    floors = FAST_FLOORS if args.fast else FULL_FLOORS
    print(f"accuracy + throughput (1/{RATE} sample, scale {scale:g}, "
          f"footprint {footprint:g}):")
    cells, aggregate = bench_cells(scale, footprint, args.reps)
    print("interval calibration (default replicate groups):")
    intervals = calibrate_intervals(scale, footprint)

    payload = {
        "benchmark": "sampled-engine",
        "fast": args.fast,
        "reps": args.reps,
        "rate": RATE,
        "request_scale": scale,
        "footprint_scale": footprint,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "floors": floors,
        "cells": cells,
        "aggregate": aggregate,
        "intervals": intervals,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.no_gate:
        return 0
    failures = []
    if aggregate["mean_relative_error"] > floors["mean_error"]:
        failures.append(
            f"mean relative error {aggregate['mean_relative_error']:.2%} "
            f"above the {floors['mean_error']:.0%} floor")
    if aggregate["max_relative_error"] > floors["max_error"]:
        failures.append(
            f"max relative error {aggregate['max_relative_error']:.2%} "
            f"above the {floors['max_error']:.0%} floor")
    if aggregate["sampled_cells"] \
            and aggregate["aggregate_speedup"] < floors["speedup"]:
        failures.append(
            f"aggregate speedup {aggregate['aggregate_speedup']:.1f}x "
            f"below the {floors['speedup']:.0f}x floor")
    if failures:
        print("SAMPLING GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"sampling gate OK (speedup "
          f"{aggregate['aggregate_speedup']:.1f}x >= "
          f"{floors['speedup']:.0f}x, mean error "
          f"{aggregate['mean_relative_error']:.2%} <= "
          f"{floors['mean_error']:.0%}, max "
          f"{aggregate['max_relative_error']:.2%} <= "
          f"{floors['max_error']:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
