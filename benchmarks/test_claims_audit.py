"""The headline benchmark: audit every encoded paper claim at once.

``python -m repro claims`` prints the same table; this benchmark keeps
the full audit under CI and fails loudly if calibration drifts.
"""

from __future__ import annotations

from repro.experiments.claims import verify_claims
from repro.experiments.report import render_table


def test_all_paper_claims_hold(benchmark, runner, emit):
    results = benchmark.pedantic(
        lambda: verify_claims(runner), rounds=1, iterations=1
    )
    emit(render_table(
        ["id", "ok", "claim", "paper", "measured"],
        [
            (r.claim_id, "PASS" if r.holds else "FAIL", r.statement,
             r.paper_value, r.measured)
            for r in results
        ],
        title="Paper-claim audit (12 claims, Sections III & V)",
    ))
    failing = [r.claim_id for r in results if not r.holds]
    assert not failing, f"claims failing: {failing}"
    assert len(results) >= 12
