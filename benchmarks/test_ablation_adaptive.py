"""A-4: adaptive threshold prediction (the paper's future-work remark).

Section V-B: "using adaptive threshold prediction can further improve
the efficiency of the proposed scheme. This is part of our ongoing
research."  The extension implemented in
:class:`repro.core.adaptive.AdaptiveMigrationPolicy` is evaluated here
on the two workloads whose fixed thresholds misfire (raytrace, vips)
and on one where the defaults are already right (dedup).
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.sweep import adaptive_comparison

WORKLOADS = ("raytrace", "vips", "dedup")


def test_adaptive_thresholds(benchmark, emit):
    comparisons = benchmark.pedantic(
        lambda: [adaptive_comparison(name) for name in WORKLOADS],
        rounds=1, iterations=1,
    )
    emit(render_table(
        ["workload", "fixed time (ns)", "adaptive time (ns)", "gain",
         "final read thr", "final write thr", "promo efficiency"],
        [
            (
                comparison.workload,
                f"{comparison.fixed.memory_time_ns:.1f}",
                f"{comparison.adaptive.memory_time_ns:.1f}",
                f"{100 * comparison.amat_improvement:+.1f}%",
                comparison.final_read_threshold,
                comparison.final_write_threshold,
                f"{comparison.promotion_efficiency:.2f}",
            )
            for comparison in comparisons
        ],
        title="A-4: fixed vs adaptive promotion thresholds",
    ))
    by_name = {comparison.workload: comparison for comparison in comparisons}

    # raytrace: the bait workload — adaptation must help clearly
    raytrace = by_name["raytrace"]
    assert raytrace.amat_improvement > 0.1
    assert raytrace.adaptive.migrations_to_dram < \
        raytrace.fixed.migrations_to_dram
    # the controller learned to be more conservative on reads
    assert raytrace.final_read_threshold > 16

    # dedup: thresholds already fine — adaptation must not hurt much
    dedup = by_name["dedup"]
    assert dedup.amat_improvement > -0.1
