#!/usr/bin/env python3
"""Batched-kernel throughput -> BENCH_core.json, with a regression gate.

Measures the two hot loops this repository spends its CPU time in:

* **Policy simulation** — requests/second through
  :class:`HybridMemorySimulator` for the core policies, once with the
  batched ``access_batch`` kernels (``batch=True``, the default) and
  once through the per-request ``access`` loop (``batch=False``, the
  pre-batching behaviour).  Both paths produce bit-identical
  :class:`RunResult`\\ s — ``tests/test_batch_equivalence.py`` asserts
  it — so the ratio is pure kernel speedup.
* **Cache filtering** — CPU accesses/second through
  :func:`repro.cpu.filter.filter_trace`, vectorized kernel vs the
  per-request reference replay, on a default (cache-thrashing) and a
  high-locality multicore trace.
* **Observability overhead** — the batched kernels with the event bus
  detached (``events=None``, the default) versus attached with the
  standard sinks.  The events-off number is what the regression gate
  floors: the bus must stay zero-overhead when disabled.
* **Pipeline phase breakdown** (report-only) — per-phase wall-clock of
  one representative grid cell: workload render vs cache filter vs
  simulator replay, so engine-level speedups (analytic, sampled) can
  be read against the phases they leave untouched.

Timing uses ``time.process_time()`` (container wall clocks jitter by
2x), garbage collection is disabled around the timed region, and each
cell is best-of-``--reps``.

The **regression gate** compares the batched/vectorized numbers
against the floors in ``benchmarks/baseline_core.json`` and fails
(exit 1) when throughput drops below ``tolerance`` (default 0.7, i.e.
a >30% regression) times the stored floor.  Floors are deliberately
conservative — about half of a dev-container measurement — so the gate
catches real kernel regressions, not machine variance.  Refresh them
with ``--update-baseline`` after intentional changes.

Run:  python benchmarks/bench_core.py [--fast] [--reps N]
                                      [--output BENCH_core.json]
                                      [--baseline benchmarks/baseline_core.json]
                                      [--update-baseline] [--no-gate]
"""

import argparse
import gc
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.cpu.filter import filter_trace
from repro.cpu.hierarchy import cotson_hierarchy
from repro.cpu.multicore import synthesize_cpu_trace
from repro.memory.specs import HybridMemorySpec
from repro.mmu.simulator import HybridMemorySimulator
from repro.obs import EventConfig
from repro.policies.registry import policy_factory
from repro.workloads.synthetic import zipf_workload

#: Policies measured with the event bus attached vs detached.
EVENT_POLICIES = ("proposed", "clock-dwf")

#: Policies on the policy-throughput grid (the figure-4 core set).
POLICIES = ("proposed", "clock-dwf", "dram-only", "nvm-only")

#: zipf workload sizes: full (local measurement) and --fast (CI smoke).
FULL_SIZE = dict(pages=4000, requests=500_000)
FAST_SIZE = dict(pages=1000, requests=100_000)

#: Cache-filter workloads: the synthesizer's default mix thrashes the
#: L1s (uniform-random lines within a big zipf page set); the "local"
#: mix keeps a per-core working set that caches well, which is closer
#: to the L1 hit ratios real applications show.
FILTER_WORKLOADS = {
    "multicore-default": {},
    "multicore-local": dict(shared_pages=16, private_pages=1,
                            shared_fraction=0.1, zipf_alpha=1.5),
}

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline_core.json"

#: Written into refreshed baselines: floor = measured * this margin.
BASELINE_MARGIN = 0.5


def best_of(fn, reps: int) -> float:
    """Best-of-``reps`` process time of ``fn()`` with the GC paused."""
    best = float("inf")
    for _ in range(reps):
        gc.collect()
        gc.disable()
        started = time.process_time()
        fn()
        elapsed = time.process_time() - started
        gc.enable()
        best = min(best, elapsed)
    return best


def policy_spec(name: str, footprint_pages: int) -> HybridMemorySpec:
    spec = HybridMemorySpec.for_footprint(footprint_pages)
    if name.startswith("dram-only"):
        return spec.as_dram_only()
    if name.startswith("nvm-only"):
        return spec.as_nvm_only()
    return spec


def bench_policies(size: dict, reps: int) -> dict:
    trace = zipf_workload(**size, seed=2016)
    requests = len(trace)
    rows: dict[str, dict] = {}
    for name in POLICIES:
        spec = policy_spec(name, size["pages"])

        def simulate(batch: bool) -> None:
            simulator = HybridMemorySimulator(
                spec, policy_factory(name), sanitize=False, batch=batch,
            )
            simulator.run(trace)

        batched = requests / best_of(lambda: simulate(True), reps)
        per_request = requests / best_of(lambda: simulate(False), reps)
        rows[name] = {
            "batch_rps": round(batched),
            "per_request_rps": round(per_request),
            "speedup": round(batched / per_request, 3),
        }
        print(f"  policy {name:10s}  batch {batched/1e3:7.1f}k req/s  "
              f"per-request {per_request/1e3:7.1f}k req/s  "
              f"speedup {batched / per_request:.2f}x")
    return {"workload": "zipf", **size, "results": rows}


def bench_filter(fast: bool, reps: int) -> dict:
    requests = 100_000 if fast else 500_000
    rows: dict[str, dict] = {}
    for label, kwargs in FILTER_WORKLOADS.items():
        trace = synthesize_cpu_trace(requests=requests, seed=9, **kwargs)

        def run(vectorized: bool) -> None:
            filter_trace(trace, cotson_hierarchy(), vectorized=vectorized)

        vec = requests / best_of(lambda: run(True), reps)
        ref = requests / best_of(lambda: run(False), reps)
        hierarchy = cotson_hierarchy()
        filter_trace(trace, hierarchy, vectorized=True)
        hit_ratio = (hierarchy.stats.l1_hits
                     / max(hierarchy.stats.cpu_accesses, 1))
        rows[label] = {
            "vectorized_aps": round(vec),
            "reference_aps": round(ref),
            "speedup": round(vec / ref, 3),
            "l1_hit_ratio": round(hit_ratio, 4),
        }
        print(f"  filter {label:18s}  vectorized {vec/1e3:7.1f}k acc/s  "
              f"reference {ref/1e3:7.1f}k acc/s  speedup {vec/ref:.2f}x  "
              f"(L1 hit {hit_ratio:.1%})")
    return {"requests": requests, "results": rows}


def bench_events(size: dict, reps: int) -> dict:
    trace = zipf_workload(**size, seed=2016)
    requests = len(trace)
    rows: dict[str, dict] = {}
    for name in EVENT_POLICIES:
        spec = policy_spec(name, size["pages"])

        def simulate(events) -> None:
            simulator = HybridMemorySimulator(
                spec, policy_factory(name), sanitize=False, events=events,
            )
            simulator.run(trace)

        off = requests / best_of(lambda: simulate(None), reps)
        on = requests / best_of(
            lambda: simulate(EventConfig(buckets=64)), reps)
        rows[name] = {
            "events_off_rps": round(off),
            "events_on_rps": round(on),
            "overhead": round(off / on, 3),
        }
        print(f"  events {name:10s}  off {off/1e3:7.1f}k req/s  "
              f"on {on/1e3:7.1f}k req/s  overhead {off / on:.2f}x")
    return {"workload": "zipf", **size, "results": rows}


def bench_pipeline(fast: bool, reps: int) -> dict:
    """Per-phase wall-clock of the run pipeline, one representative cell.

    Times the three phases an end-to-end run spends its time in —
    **workload render** (phased trace synthesis + machine sizing),
    **cache filter** (the CPU front-end's vectorized hierarchy replay
    over a same-order multicore trace), and **replay** (the simulator
    consuming the rendered trace) — so engine-level optimisations can
    be read against the pipeline costs they do *not* remove: a sampled
    or analytic engine only compresses the replay phase, and this
    section shows how much of a cell's wall-clock that actually is.
    Report-only (the regression gate floors the kernels above).
    """
    from repro.experiments.runspec import RunSpec

    scale = 0.005 if fast else 0.02
    spec = RunSpec.core("dedup", "proposed", request_scale=scale)
    render_seconds = best_of(spec.render, reps)
    instance = spec.render()
    replay_seconds = best_of(
        lambda: spec.execute(instance=instance), reps)
    filter_requests = len(instance.trace)
    cpu_trace = synthesize_cpu_trace(requests=filter_requests, seed=9)
    filter_seconds = best_of(
        lambda: filter_trace(cpu_trace, cotson_hierarchy(),
                             vectorized=True), reps)
    phases = {
        "workload_render": render_seconds,
        "cache_filter": filter_seconds,
        "replay": replay_seconds,
    }
    total = sum(phases.values())
    rows = {
        name: {"seconds": round(seconds, 4),
               "share": round(seconds / total, 4)}
        for name, seconds in phases.items()
    }
    for name, row in rows.items():
        print(f"  phase {name:16s} {row['seconds'] * 1e3:8.1f} ms "
              f"({row['share']:.0%})")
    return {
        "workload": "dedup",
        "policy": "proposed",
        "request_scale": scale,
        "requests": int(len(instance.trace)),
        "phases": rows,
    }


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def measured_floors(payload: dict) -> dict[str, float]:
    """Flatten a benchmark payload into gate-comparable numbers."""
    floors: dict[str, float] = {}
    for name, row in payload["policies"]["results"].items():
        floors[f"policy:{name}"] = row["batch_rps"]
    for label, row in payload["filter"]["results"].items():
        floors[f"filter:{label}"] = row["vectorized_aps"]
    for name, row in payload.get("events", {}).get("results", {}).items():
        floors[f"events-off:{name}"] = row["events_off_rps"]
    return floors


def check_gate(payload: dict, baseline: dict) -> list[str]:
    mode = "fast" if payload["fast"] else "full"
    floors = baseline.get("floors", {}).get(mode)
    if not floors:
        return [f"baseline has no floors for mode {mode!r}"]
    tolerance = baseline.get("tolerance", 0.7)
    measured_by_key = measured_floors(payload)
    failures = []
    for key, floor in floors.items():
        measured = measured_by_key.get(key)
        if measured is None:
            failures.append(f"{key}: missing from benchmark output")
        elif measured < tolerance * floor:
            failures.append(
                f"{key}: {measured:,.0f}/s is below {tolerance:.0%} of "
                f"the {floor:,.0f}/s baseline floor")
    return failures


def update_baseline(payload: dict, path: Path) -> None:
    baseline = {"note": "Conservative throughput floors (~0.5x of a dev "
                        "measurement); the gate fails below tolerance x "
                        "floor. Refresh with --update-baseline.",
                "tolerance": 0.7, "floors": {}}
    if path.exists():
        baseline.update(json.loads(path.read_text(encoding="utf-8")))
    mode = "fast" if payload["fast"] else "full"
    baseline.setdefault("floors", {})[mode] = {
        key: round(value * BASELINE_MARGIN)
        for key, value in measured_floors(payload).items()
    }
    path.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(f"updated {path} ({mode} floors)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced sizes (CI smoke run)")
    parser.add_argument("--reps", type=int, default=3, metavar="N",
                        help="best-of-N timing repetitions (default 3)")
    parser.add_argument("--output", default="BENCH_core.json",
                        help="result file (default: BENCH_core.json)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="baseline floors for the regression gate")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline floors from this run")
    parser.add_argument("--no-gate", action="store_true",
                        help="measure and report only; skip the gate")
    args = parser.parse_args()

    size = FAST_SIZE if args.fast else FULL_SIZE
    print(f"policy grid: {len(POLICIES)} policies on zipf "
          f"({size['pages']} pages, {size['requests']:,} requests), "
          f"best of {args.reps}")
    policies = bench_policies(size, args.reps)
    print("cache filter:")
    filters = bench_filter(args.fast, args.reps)
    print("observability overhead:")
    events = bench_events(size, args.reps)
    print("pipeline phase breakdown:")
    pipeline = bench_pipeline(args.fast, args.reps)

    payload = {
        "benchmark": "core-kernel-throughput",
        "fast": args.fast,
        "reps": args.reps,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "policies": policies,
        "filter": filters,
        "events": events,
        "pipeline": pipeline,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        update_baseline(payload, baseline_path)
        return 0
    if args.no_gate:
        return 0
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run with --update-baseline "
              "to create one", file=sys.stderr)
        return 0
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = check_gate(payload, baseline)
    if failures:
        print("PERF REGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    mode = "fast" if payload["fast"] else "full"
    print(f"perf gate OK ({mode} floors, "
          f"tolerance {baseline.get('tolerance', 0.7):.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
