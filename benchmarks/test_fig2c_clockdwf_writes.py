"""F-2c: regenerate Fig. 2c — CLOCK-DWF NVM writes normalised to an
NVM-only memory.

Shape claims (paper Section III-C):
* CLOCK-DWF serves no write requests from NVM (its "Read/Write
  Requests" segment is identically zero),
* migrations contribute over half of its NVM writes in most workloads,
* counting migrations, several workloads write *more* to NVM than an
  NVM-only memory (the paper's 3.74x outlier).
"""

from __future__ import annotations

from repro.experiments.figures import figure_2c
from repro.experiments.report import render_figure
from repro.experiments.results import ARITH_MEAN_LABEL, GEO_MEAN_LABEL


def test_fig2c(benchmark, runner, emit):
    figure = benchmark.pedantic(
        lambda: figure_2c(runner), rounds=1, iterations=1
    )
    emit(render_figure(figure))

    workload_bars = [
        bar for bar in figure.bars
        if bar.label not in (GEO_MEAN_LABEL, ARITH_MEAN_LABEL)
    ]
    # CLOCK-DWF never answers a write from NVM
    for bar in workload_bars:
        assert bar.segments["Read/Write Requests"] == 0.0, bar.label

    # migrations are the main write source for most workloads
    # (blackscholes is read-only: it has no migration writes at all)
    migration_dominant = [
        bar.label for bar in workload_bars
        if bar.total > 0
        and bar.segments["Migration"] / bar.total > 0.5
    ]
    assert len(migration_dominant) >= 6

    # several workloads exceed the NVM-only write volume
    above_baseline = [bar.label for bar in workload_bars if bar.total > 1.0]
    assert len(above_baseline) >= 3
    assert max(bar.total for bar in workload_bars) > 2.0
