"""A-6: NVM-technology sensitivity.

Section IV ties the thresholds to "the performance and power
characteristics of the employed NVM"; this ablation quantifies how the
hybrid trade-off moves across device generations.  Placement decisions
are latency-blind (the policies see only hits), so migration *counts*
stay fixed while their modelled cost scales with the device — letting
the sweep isolate the pure technology effect.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.report import render_table
from repro.memory.devices import sttram_spec
from repro.memory.specs import HybridMemorySpec
from repro.mmu.simulator import simulate
from repro.policies.registry import policy_factory
from repro.workloads.parsec import parsec_workload


def test_nvm_technology_sweep(benchmark, emit):
    workload = parsec_workload("facesim")
    base = workload.spec
    static_factor = base.nvm.static_power_per_gb / 0.1

    technologies = {
        "pcm": base.nvm,
        "pcm-fast-writes": dataclasses.replace(
            base.nvm, name="pcm-fast",
            write_latency=base.nvm.write_latency / 2,
            write_energy=base.nvm.write_energy / 2,
        ),
        "sttram": sttram_spec().scaled(static=static_factor),
        "pcm-slow": base.nvm.scaled(latency=2.0, energy=1.5),
    }

    def run_all():
        rows = {}
        for tech_name, nvm in technologies.items():
            spec = HybridMemorySpec(
                dram=base.dram, nvm=nvm, disk=base.disk,
                dram_pages=base.dram_pages, nvm_pages=base.nvm_pages,
            )
            for policy in ("clock-dwf", "proposed"):
                rows[(tech_name, policy)] = simulate(
                    workload.trace, spec, policy_factory(policy),
                    inter_request_gap=workload.inter_request_gap,
                    warmup_fraction=workload.warmup_fraction,
                )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(render_table(
        ["technology", "policy", "mem time (ns)", "APPR (nJ)",
         "migrations"],
        [
            (tech, policy,
             f"{run.performance.memory_time * 1e9:.1f}",
             f"{run.power.appr * 1e9:.2f}",
             f"{run.accounting.migrations:,}")
            for (tech, policy), run in rows.items()
        ],
        title="A-6: facesim across NVM technologies",
    ))

    # placement decisions are device-blind: same migration counts
    for policy in ("clock-dwf", "proposed"):
        counts = {
            tech: rows[(tech, policy)].accounting.migrations
            for tech in technologies
        }
        assert len(set(counts.values())) == 1, (policy, counts)

    # better devices narrow but do not close the gap
    for tech in technologies:
        proposed = rows[(tech, "proposed")]
        dwf = rows[(tech, "clock-dwf")]
        assert proposed.performance.memory_time < \
            dwf.performance.memory_time, tech
    gap_pcm = (rows[("pcm", "clock-dwf")].performance.memory_time
               / rows[("pcm", "proposed")].performance.memory_time)
    gap_stt = (rows[("sttram", "clock-dwf")].performance.memory_time
               / rows[("sttram", "proposed")].performance.memory_time)
    assert gap_stt < gap_pcm  # STT-RAM softens CLOCK-DWF's penalty

    # slower NVM hurts both absolutely
    assert rows[("pcm-slow", "proposed")].performance.memory_time > \
        rows[("pcm", "proposed")].performance.memory_time