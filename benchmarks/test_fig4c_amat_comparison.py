"""F-4c: regenerate Fig. 4c — proposed-scheme AMAT normalised to
CLOCK-DWF.

Shape claims (paper Section V-B):
* the proposed scheme improves AMAT substantially — up to 70% (ratio
  ~0.3) and ~48% on geometric mean (ratio ~0.5),
* the migration component stays under half of the total for most
  workloads,
* raytrace is the adverse case where CLOCK-DWF ends up with the better
  AMAT (ratio > 1) because the proposed scheme issues many promotions.
"""

from __future__ import annotations

from repro.experiments.figures import figure_4c
from repro.experiments.report import render_figure
from repro.experiments.results import ARITH_MEAN_LABEL, GEO_MEAN_LABEL


def test_fig4c(benchmark, runner, emit):
    figure = benchmark.pedantic(
        lambda: figure_4c(runner), rounds=1, iterations=1
    )
    emit(render_figure(figure))

    workload_bars = [
        bar for bar in figure.bars
        if bar.label not in (GEO_MEAN_LABEL, ARITH_MEAN_LABEL)
    ]
    totals = {bar.label: bar.total for bar in workload_bars}

    # headline: large average improvement over CLOCK-DWF
    gmean = figure.mean_total(GEO_MEAN_LABEL)
    assert gmean < 0.7  # paper: 0.52
    # and a deep best case (paper: up to 70% better)
    assert min(totals.values()) < 0.35

    # the proposed scheme wins on most workloads...
    wins = [name for name, total in totals.items() if total < 1.0]
    assert len(wins) >= 8
    # ...but loses on raytrace, where its threshold baits promotions
    assert totals["raytrace"] > 1.0

    # the migration component is tamed (< 50% of AMAT for most loads)
    tame = [
        bar.label for bar in workload_bars
        if bar.segments["Migrations"] / bar.total < 0.5
    ]
    assert len(tame) >= 8
