"""F-4b: regenerate Fig. 4b — NVM writes of CLOCK-DWF (left) and the
proposed scheme (right), normalised to an NVM-only memory.

Shape claims (paper Section V-B):
* the proposed scheme serves writes *in* NVM instead of migrating, so
  its "Read/Write Requests" segment is non-zero while CLOCK-DWF's is
  exactly zero,
* it issues far fewer NVM writes than CLOCK-DWF (paper: up to 93%
  less) and stays below the NVM-only baseline (paper: 49% less on
  average, prolonging lifetime up to ~4x),
* CLOCK-DWF exceeds the NVM-only write volume on several workloads.
"""

from __future__ import annotations

from repro.experiments.figures import figure_4b
from repro.experiments.report import render_figure
from repro.experiments.results import GEO_MEAN_LABEL
from repro.workloads.parsec import WORKLOAD_NAMES

#: blackscholes is read-only: the NVM-only baseline itself does zero
#: writes post-warmup, so its normalised bar is degenerate.
_COMPARABLE = tuple(n for n in WORKLOAD_NAMES if n != "blackscholes")


def test_fig4b(benchmark, runner, emit):
    figure = benchmark.pedantic(
        lambda: figure_4b(runner), rounds=1, iterations=1
    )
    emit(render_figure(figure))

    dwf = figure.totals(group="clock-dwf")
    proposed = figure.totals(group="proposed")
    segments = {
        (bar.group, bar.label): bar.segments for bar in figure.bars
    }

    for name in _COMPARABLE:
        # CLOCK-DWF never writes into NVM on behalf of a request
        assert segments[("clock-dwf", name)]["Read/Write Requests"] == 0.0
    # the proposed scheme does, wherever the workload writes at all
    writers = [name for name in _COMPARABLE
               if segments[("proposed", name)]["Read/Write Requests"] > 0]
    assert len(writers) >= 10

    # proposed scheme cuts NVM writes versus CLOCK-DWF on most loads,
    # dramatically at the extreme (paper: up to 93%)
    wins = [name for name in _COMPARABLE if proposed[name] < dwf[name]]
    assert len(wins) >= 8
    assert min(proposed[name] / max(dwf[name], 1e-9)
               for name in _COMPARABLE) < 0.2

    # and stays below the NVM-only baseline on average (longer life)
    below = [name for name in _COMPARABLE if proposed[name] < 1.0]
    assert len(below) >= 8
    assert min(proposed[name] for name in _COMPARABLE) < 0.5

    # CLOCK-DWF exceeds NVM-only on several workloads
    assert len([name for name in _COMPARABLE if dwf[name] > 1.0]) >= 3

    gmean_dwf = figure.mean_total(GEO_MEAN_LABEL, group="clock-dwf")
    gmean_proposed = figure.mean_total(GEO_MEAN_LABEL, group="proposed")
    assert gmean_proposed < gmean_dwf
