"""A-5: endurance extension — Start-Gap wear levelling under each policy.

Beyond the paper: combines the policy-level write reduction (Fig. 4b)
with device-level wear levelling and quantifies the resulting lifetime
bound (set by the hottest physical frame).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import render_table
from repro.memory.wear_leveling import replay_writes


def _wear_stream(run) -> tuple[list[int], int]:
    page_ids = {page: index for index, page
                in enumerate(run.wear.page_writes)}
    stream: list[int] = []
    for page, count in run.wear.page_writes.items():
        stream.extend([page_ids[page]] * count)
    # the histogram has no order; shuffle deterministically to restore
    # the temporal interleaving real traffic has
    rng = np.random.default_rng(0)
    rng.shuffle(stream)
    return stream, max(len(page_ids), 1)


def test_wear_leveling(benchmark, runner, emit):
    def collect():
        results = {}
        for policy in ("nvm-only", "clock-dwf", "proposed"):
            run = runner.submit([runner.spec_for("vips", policy)])[0]
            stream, frames = _wear_stream(run)
            raw = replay_writes(stream, frames)
            levelled = replay_writes(stream, frames, gap_write_interval=4)
            results[policy] = (run, raw, levelled)
        return results

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    emit(render_table(
        ["policy", "NVM writes", "max wear raw", "max wear levelled",
         "levelling gain"],
        [
            (
                policy,
                f"{run.nvm_writes.total:,}",
                f"{raw.max_frame_writes:,}",
                f"{levelled.max_frame_writes:,}",
                f"{levelled.lifetime_gain_over(raw):.2f}x",
            )
            for policy, (run, raw, levelled) in results.items()
        ],
        title="A-5: Start-Gap wear levelling on vips",
    ))

    for policy, (run, raw, levelled) in results.items():
        # levelling never makes the wear bound worse by more than its
        # own copy overhead, and improves skewed distributions
        assert levelled.max_frame_writes <= raw.max_frame_writes * 1.1, \
            policy
        assert levelled.imbalance <= raw.imbalance * 1.1, policy

    # levelling buys real lifetime on the skewed NVM-only distribution
    _, raw, levelled = results["nvm-only"]
    assert levelled.lifetime_gain_over(raw) > 1.5

    # the proposed scheme + levelling yields the lowest hottest-frame
    # wear of the three policies (the combined-lifetime headline)
    hottest = {policy: levelled.max_frame_writes
               for policy, (_, _, levelled) in results.items()}
    assert hottest["proposed"] == min(hottest.values())
