"""F-1: regenerate Fig. 1 — DRAM-only power breakdown.

Shape claims (paper Section III):
* static power contributes 60-80% of DRAM main-memory power for the
  bulk of the workloads (it *dominates*), and
* streamcluster is the outlier: its access burst over a small footprint
  makes dynamic power the biggest share.
"""

from __future__ import annotations

from repro.experiments.figures import figure_1
from repro.experiments.report import render_figure


def test_fig1(benchmark, runner, emit):
    figure = benchmark.pedantic(
        lambda: figure_1(runner), rounds=1, iterations=1
    )
    emit(render_figure(figure))

    static_share = {
        bar.label: bar.segments["Static"] / bar.total
        for bar in figure.bars
    }
    # static dominates for every workload except the outlier
    dominated = [name for name, share in static_share.items()
                 if share >= 0.5]
    assert len(dominated) >= 10
    # streamcluster is the outlier with the smallest static share
    assert static_share["streamcluster"] == min(static_share.values())
    assert static_share["streamcluster"] < 0.35
    # its dynamic share is the largest across the suite
    dynamic_share = {
        bar.label: bar.segments["Dynamic"] / bar.total
        for bar in figure.bars
    }
    assert dynamic_share["streamcluster"] == max(dynamic_share.values())
    # page-fault power is visible but never dominant
    for bar in figure.bars:
        assert bar.segments["Page Fault"] / bar.total < 0.5
