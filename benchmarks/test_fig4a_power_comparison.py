"""F-4a: regenerate Fig. 4a — power of CLOCK-DWF (left bars) and the
proposed scheme (right bars), normalised to DRAM-only.

Shape claims (paper Section V-B):
* the proposed scheme beats CLOCK-DWF on power for most workloads
  (up to ~48% better, double-digit geometric mean),
* it cuts power substantially versus DRAM-only (the paper: up to 79%,
  43% on average),
* canneal and streamcluster remain above DRAM-only for both policies
  (unsuitable for hybrid memory),
* the migration component shrinks dramatically under the proposed
  scheme — except raytrace, where the proposed scheme migrates more
  (the threshold-bait case).
"""

from __future__ import annotations

from repro.experiments.figures import figure_4a
from repro.experiments.report import render_figure
from repro.experiments.results import GEO_MEAN_LABEL
from repro.workloads.parsec import WORKLOAD_NAMES


def test_fig4a(benchmark, runner, emit):
    figure = benchmark.pedantic(
        lambda: figure_4a(runner), rounds=1, iterations=1
    )
    emit(render_figure(figure))

    dwf = figure.totals(group="clock-dwf")
    proposed = figure.totals(group="proposed")

    # proposed beats CLOCK-DWF on most workloads
    wins = [name for name in WORKLOAD_NAMES
            if proposed[name] < dwf[name]]
    assert len(wins) >= 8
    # and by a large factor at the extreme (paper: up to 48% less)
    best_gain = min(proposed[name] / dwf[name] for name in WORKLOAD_NAMES)
    assert best_gain < 0.52

    # geometric means: proposed clearly ahead of CLOCK-DWF and well
    # below the DRAM-only baseline (paper: 43% average saving)
    dwf_gmean = figure.mean_total(GEO_MEAN_LABEL, group="clock-dwf")
    proposed_gmean = figure.mean_total(GEO_MEAN_LABEL, group="proposed")
    assert proposed_gmean < dwf_gmean
    assert proposed_gmean < 0.95
    # deepest saving versus DRAM-only (paper: up to 79%; shape: >40%)
    assert min(proposed.values()) < 0.6

    # unsuitable workloads stay above DRAM-only for both policies
    for name in ("canneal", "streamcluster"):
        assert dwf[name] > 1.0, name
        assert proposed[name] > 1.0, name

    # migration power collapses under the proposed scheme...
    migration = {
        (bar.group, bar.label): bar.segments["Migration"]
        for bar in figure.bars
    }
    reduced = [
        name for name in WORKLOAD_NAMES
        if migration[("proposed", name)]
        <= migration[("clock-dwf", name)] + 1e-9
    ]
    assert len(reduced) >= 9
    # ...but not for raytrace, the paper's adverse case
    assert migration[("proposed", "raytrace")] > \
        migration[("clock-dwf", "raytrace")]
