#!/usr/bin/env python3
"""Analytic-engine throughput and accuracy -> BENCH_model.json.

Two measurements, one gate:

* **Sweep throughput** — configurations/second through a
  read x write threshold sweep of the proposed policy, evaluated once
  with ``engine="analytic"`` (the closed-form estimator in
  :mod:`repro.model`) and once with ``engine="simulate"``.  The
  analytic numbers separate the one-time workload-profile build from
  the per-configuration marginal cost: a sweep pays the profile once
  and the Markov stage per point, which is where the orders-of-
  magnitude advantage over trace replay comes from.
* **Cross-validation smoke** — the full Fig. 4 grid (twelve PARSEC
  workloads x four core policies) evaluated both ways at the fast
  scale, checked against the same accuracy contract
  ``tests/test_model_validation.py`` asserts (DESIGN.md section 14).

The **gate** fails (exit 1) when the analytic sweep drops below the
speedup floor (100x at the full scale, 10x with ``--fast``, where the
traces are too short for simulation cost to dominate) or when any
grid cell exceeds its error bound.

Run:  python benchmarks/bench_model.py [--fast] [--reps N]
                                       [--output BENCH_model.json]
                                       [--no-gate]
"""

import argparse
import gc
import json
import os
import platform
import sys
import time

from repro.experiments.runner import CORE_POLICIES
from repro.experiments.runspec import RunSpec
from repro.workloads.parsec import WORKLOAD_NAMES

#: Sweep workload and threshold grid (the paper's sensitivity range).
SWEEP_WORKLOAD = "dedup"
THRESHOLDS = (1, 2, 4, 8, 16, 32, 64)

#: Request scales: full (local measurement) and --fast (CI smoke).
FULL_SCALE = 0.005
FAST_SCALE = 0.0005

#: Cross-validation runs at the fast scale in both modes (48 cells
#: of full-scale simulation would dominate the benchmark's runtime).
VALIDATION_SCALE = FAST_SCALE

#: Speedup floors for the gate.
FULL_SPEEDUP_FLOOR = 100.0
FAST_SPEEDUP_FLOOR = 10.0

#: Accuracy contract, mirrored from tests/test_model_validation.py.
HIT_RATIO_POINTS = 0.5
AMAT_RELATIVE = 0.30
APPR_RELATIVE = 0.40
NVM_WRITES_RELATIVE = 0.45
NVM_WRITES_FLOOR = 1_000
MEAN_AMAT_RELATIVE = 0.05
MEAN_APPR_RELATIVE = 0.08


def timed(fn) -> float:
    """Process time of one ``fn()`` with the GC paused."""
    gc.collect()
    gc.disable()
    started = time.process_time()
    fn()
    elapsed = time.process_time() - started
    gc.enable()
    return elapsed


def bench_sweep(scale: float, reps: int, simulated_points: int) -> dict:
    """Threshold-sweep configs/s: analytic vs simulate."""
    from repro.model import estimator

    overrides = [
        {"read_threshold": read, "write_threshold": write}
        for read in THRESHOLDS
        for write in THRESHOLDS
    ]
    instance = RunSpec.core(
        SWEEP_WORKLOAD, "proposed", request_scale=scale
    ).render()

    def run(engine: str, configs: list) -> None:
        for config in configs:
            RunSpec.core(
                SWEEP_WORKLOAD, "proposed", request_scale=scale,
                engine=engine, policy_overrides=config,
            ).execute(instance=instance)

    estimator._PROFILES.clear()
    estimator._MEMBERSHIP.clear()
    profile_seconds = timed(lambda: run("analytic", overrides[:1]))
    marginal = min(
        timed(lambda: run("analytic", overrides)) / len(overrides)
        for _ in range(reps)
    )
    simulated = overrides[:simulated_points]
    per_simulation = min(
        timed(lambda: run("simulate", simulated)) / len(simulated)
        for _ in range(reps)
    )
    analytic_cps = 1.0 / marginal
    simulate_cps = 1.0 / per_simulation
    speedup = per_simulation / marginal
    print(f"  sweep {SWEEP_WORKLOAD} ({len(overrides)} configs, "
          f"scale {scale:g}, {len(instance.trace.pages):,} requests)")
    print(f"    analytic  {analytic_cps:10,.0f} configs/s "
          f"({marginal * 1e3:.2f} ms marginal, "
          f"{profile_seconds:.2f}s one-time profile)")
    print(f"    simulate  {simulate_cps:10,.1f} configs/s "
          f"({per_simulation * 1e3:.1f} ms/config)")
    print(f"    speedup   {speedup:10,.0f}x")
    return {
        "workload": SWEEP_WORKLOAD,
        "request_scale": scale,
        "requests": int(len(instance.trace.pages)),
        "configs": len(overrides),
        "profile_build_seconds": round(profile_seconds, 4),
        "analytic_configs_per_second": round(analytic_cps, 1),
        "simulate_configs_per_second": round(simulate_cps, 2),
        "speedup": round(speedup, 1),
    }


def cross_validate(scale: float) -> dict:
    """Fig. 4 grid both ways; per-cell errors plus bound violations."""
    cells = []
    violations = []
    amat_errors = []
    appr_errors = []
    for workload in WORKLOAD_NAMES:
        for policy in CORE_POLICIES:
            sim = RunSpec.core(
                workload, policy, request_scale=scale
            ).execute()
            ana = RunSpec.core(
                workload, policy, request_scale=scale, engine="analytic"
            ).execute()
            hit_delta = abs(
                ana.accounting.hit_ratio - sim.accounting.hit_ratio
            )
            amat_error = (
                abs(ana.performance.amat - sim.performance.amat)
                / sim.performance.amat
            )
            appr_error = abs(ana.power.appr - sim.power.appr) / sim.power.appr
            writes_delta = abs(ana.nvm_writes.total - sim.nvm_writes.total)
            writes_bound = max(
                NVM_WRITES_RELATIVE * sim.nvm_writes.total, NVM_WRITES_FLOOR
            )
            cell = f"{workload}/{policy}"
            if hit_delta > HIT_RATIO_POINTS / 100:
                violations.append(f"{cell}: hit-ratio off {hit_delta:.4f}")
            if amat_error > AMAT_RELATIVE:
                violations.append(f"{cell}: AMAT error {amat_error:.1%}")
            if appr_error > APPR_RELATIVE:
                violations.append(f"{cell}: APPR error {appr_error:.1%}")
            if writes_delta > writes_bound:
                violations.append(
                    f"{cell}: NVM writes off {writes_delta:,.0f}"
                )
            amat_errors.append(amat_error)
            appr_errors.append(appr_error)
            cells.append({
                "workload": workload,
                "policy": policy,
                "hit_ratio_delta": round(hit_delta, 6),
                "amat_relative_error": round(amat_error, 4),
                "appr_relative_error": round(appr_error, 4),
                "nvm_writes_delta": int(writes_delta),
            })
    mean_amat = sum(amat_errors) / len(amat_errors)
    mean_appr = sum(appr_errors) / len(appr_errors)
    if mean_amat > MEAN_AMAT_RELATIVE:
        violations.append(f"grid-mean AMAT error {mean_amat:.1%}")
    if mean_appr > MEAN_APPR_RELATIVE:
        violations.append(f"grid-mean APPR error {mean_appr:.1%}")
    print(f"  {len(cells)} cells: mean AMAT error {mean_amat:.1%} "
          f"(max {max(amat_errors):.1%}), mean APPR error "
          f"{mean_appr:.1%} (max {max(appr_errors):.1%}), "
          f"{len(violations)} bound violation(s)")
    return {
        "request_scale": scale,
        "mean_amat_relative_error": round(mean_amat, 4),
        "max_amat_relative_error": round(max(amat_errors), 4),
        "mean_appr_relative_error": round(mean_appr, 4),
        "max_appr_relative_error": round(max(appr_errors), 4),
        "violations": violations,
        "cells": cells,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced scale (CI smoke run)")
    parser.add_argument("--reps", type=int, default=3, metavar="N",
                        help="best-of-N timing repetitions (default 3)")
    parser.add_argument("--output", default="BENCH_model.json",
                        help="result file (default: BENCH_model.json)")
    parser.add_argument("--no-gate", action="store_true",
                        help="measure and report only; skip the gate")
    args = parser.parse_args()

    scale = FAST_SCALE if args.fast else FULL_SCALE
    simulated_points = 4 if not args.fast else 8
    print("sweep throughput:")
    sweep = bench_sweep(scale, args.reps, simulated_points)
    print("cross-validation (Fig. 4 grid, both engines):")
    validation = cross_validate(VALIDATION_SCALE)

    payload = {
        "benchmark": "analytic-engine",
        "fast": args.fast,
        "reps": args.reps,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "sweep": sweep,
        "validation": validation,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.no_gate:
        return 0
    floor = FAST_SPEEDUP_FLOOR if args.fast else FULL_SPEEDUP_FLOOR
    failures = list(validation["violations"])
    if sweep["speedup"] < floor:
        failures.append(
            f"sweep speedup {sweep['speedup']:.0f}x below the "
            f"{floor:.0f}x floor"
        )
    if failures:
        print("MODEL GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"model gate OK (speedup {sweep['speedup']:,.0f}x >= "
          f"{floor:.0f}x, all error bounds hold)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
