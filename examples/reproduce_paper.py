#!/usr/bin/env python3
"""Regenerate the paper's full evaluation section in one run.

Prints Tables II-IV and Figures 1, 2a-c and 4a-c as ASCII tables and
stacked bars.  This is the same machinery the benchmark harness uses.

The 12-workload x 4-policy grid fans out over a multiprocessing pool
(``--jobs``, default: all CPUs) and persists every run in the
content-addressed result cache, so a second invocation replays the
whole evaluation without simulating anything — the executor statistics
printed at the end show exactly how many runs were simulated versus
served from cache.

Run:  python examples/reproduce_paper.py [--fast] [--jobs N]
                                         [--no-cache] [--cache-dir DIR]
"""

import argparse
import time

from repro.api import (
    DEFAULT_CACHE_DIR,
    FIGURE_BUILDERS,
    ExperimentRunner,
    ParallelExecutor,
    ResultCache,
    render_figure,
    render_table,
    table_ii,
    table_iii,
    table_iv,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced trace scale (quick look)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: all CPUs)")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="disable the persistent result cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help=f"result cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    args = parser.parse_args()

    cache = ResultCache(args.cache_dir) if args.cache else None
    executor = ParallelExecutor(jobs=args.jobs, cache=cache)
    if args.fast:
        runner = ExperimentRunner(request_scale=1 / 2000,
                                  footprint_scale=1 / 128,
                                  executor=executor)
        table_kwargs = dict(request_scale=1 / 2000,
                            footprint_scale=1 / 128)
    else:
        runner = ExperimentRunner(executor=executor)
        table_kwargs = {}

    started = time.perf_counter()

    print(render_table(["Component", "Configuration"], table_ii(),
                       title="Table II: simulated system"))
    print()
    print(render_table(
        ["Memory", "Latency r/w (ns)", "Power r/w (nJ)",
         "Static (J/GB.s)"],
        table_iv(),
        title="Table IV: memory characteristics",
    ))
    print()
    rows = table_iii(**table_kwargs)
    print(render_table(
        ["Workload", "WSS KB (paper)", "write% (paper)", "write% (sim)",
         "pages (sim)", "requests (sim)"],
        [
            (
                row.workload,
                f"{row.paper_wss_kb:,}",
                f"{100 * row.paper_write_ratio:.1f}",
                f"{100 * row.measured_write_ratio:.1f}",
                f"{row.measured_wss_pages:,}",
                f"{row.measured_reads + row.measured_writes:,}",
            )
            for row in rows
        ],
        title="Table III: workload characterisation (paper vs synthetic)",
    ))

    # Warm the whole grid in one batched submission so the runs fan out
    # across the worker pool before the figure builders walk them.
    runner.grid()

    for figure_id in ("fig1", "fig2a", "fig2b", "fig2c",
                      "fig4a", "fig4b", "fig4c"):
        print()
        print(render_figure(FIGURE_BUILDERS[figure_id](runner)))

    elapsed = time.perf_counter() - started
    stats = executor.stats
    print()
    print(f"done in {elapsed:.1f}s with {executor.jobs} worker(s): "
          f"{stats.simulated} simulated, {stats.cache_hits} cache hits, "
          f"{stats.cache_misses} cache misses")


if __name__ == "__main__":
    main()
