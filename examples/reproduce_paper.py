#!/usr/bin/env python3
"""Regenerate the paper's full evaluation section in one run.

Prints Tables II-IV and Figures 1, 2a-c and 4a-c as ASCII tables and
stacked bars.  This is the same machinery the benchmark harness uses;
expect roughly half a minute for the 12-workload x 4-policy grid.

Run:  python examples/reproduce_paper.py [--fast]
"""

import argparse
import time

from repro.experiments.figures import FIGURE_BUILDERS
from repro.experiments.report import render_figure, render_table
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import table_ii, table_iii, table_iv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced trace scale (quick look)")
    args = parser.parse_args()

    if args.fast:
        runner = ExperimentRunner(request_scale=1 / 2000,
                                  footprint_scale=1 / 128)
        table_kwargs = dict(request_scale=1 / 2000,
                            footprint_scale=1 / 128)
    else:
        runner = ExperimentRunner()
        table_kwargs = {}

    started = time.perf_counter()

    print(render_table(["Component", "Configuration"], table_ii(),
                       title="Table II: simulated system"))
    print()
    print(render_table(
        ["Memory", "Latency r/w (ns)", "Power r/w (nJ)",
         "Static (J/GB.s)"],
        table_iv(),
        title="Table IV: memory characteristics",
    ))
    print()
    rows = table_iii(**table_kwargs)
    print(render_table(
        ["Workload", "WSS KB (paper)", "write% (paper)", "write% (sim)",
         "pages (sim)", "requests (sim)"],
        [
            (
                row.workload,
                f"{row.paper_wss_kb:,}",
                f"{100 * row.paper_write_ratio:.1f}",
                f"{100 * row.measured_write_ratio:.1f}",
                f"{row.measured_wss_pages:,}",
                f"{row.measured_reads + row.measured_writes:,}",
            )
            for row in rows
        ],
        title="Table III: workload characterisation (paper vs synthetic)",
    ))

    for figure_id in ("fig1", "fig2a", "fig2b", "fig2c",
                      "fig4a", "fig4b", "fig4c"):
        print()
        print(render_figure(FIGURE_BUILDERS[figure_id](runner)))

    elapsed = time.perf_counter() - started
    print()
    print(f"done in {elapsed:.1f}s")


if __name__ == "__main__":
    main()
