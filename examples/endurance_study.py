#!/usr/bin/env python3
"""Endurance study: policy-level write reduction x device-level
wear levelling.

The paper attacks NVM lifetime from the policy side (fewer NVM writes);
the device side attacks it with wear levelling (spreading whatever
writes remain evenly).  This example combines both: it runs each
policy on a write-heavy workload, extracts the per-page NVM write
histogram, replays it through a Start-Gap wear leveller, and reports
the combined lifetime picture.

Run:  python examples/endurance_study.py
"""

import numpy as np

from repro.api import RunSpec, parsec_workload, render_table, replay_writes


def main() -> None:
    workload = parsec_workload("vips")  # 41% writes
    print(f"workload: {workload.name} "
          f"({workload.trace.write_ratio:.0%} writes)\n")

    rows = []
    for policy_name in ("nvm-only", "clock-dwf", "proposed"):
        # RunSpec.core maps "nvm-only" to the paper's same-capacity
        # single-module normalisation; the rendered workload is shared.
        result = RunSpec.core("vips", policy_name).execute(instance=workload)
        # expand the per-page histogram into a logical write stream
        # (page identity -> logical frame by order of first wear)
        page_ids = {page: index for index, page
                    in enumerate(result.wear.page_writes)}
        stream = []
        for page, count in result.wear.page_writes.items():
            stream.extend([page_ids[page]] * count)
        # the histogram has no order; shuffle deterministically to
        # restore the temporal interleaving real traffic has
        rng = np.random.default_rng(0)
        rng.shuffle(stream)
        frames = max(len(page_ids), 1)
        unlevelled = replay_writes(stream, frames)
        levelled = replay_writes(stream, frames, gap_write_interval=4)
        rows.append((
            policy_name,
            f"{result.nvm_writes.total:,}",
            f"{unlevelled.max_frame_writes:,}",
            f"{levelled.max_frame_writes:,}",
            f"{unlevelled.imbalance:.1f}",
            f"{levelled.imbalance:.1f}",
            f"{levelled.lifetime_gain_over(unlevelled):.1f}x",
        ))

    print(render_table(
        ["policy", "NVM writes", "max wear (raw)", "max wear (levelled)",
         "imbalance raw", "imbalance lev.", "levelling gain"],
        rows,
        title="NVM wear: policy write-reduction x Start-Gap levelling",
    ))
    print()
    print("Lifetime stacks multiplicatively: the proposed scheme writes")
    print("less in total, and Start-Gap spreads what remains - the")
    print("combination determines when the first cell wears out.")


if __name__ == "__main__":
    main()
