#!/usr/bin/env python3
"""The full COTSon-style pipeline: CPU trace -> caches -> hybrid memory.

The paper extracts its memory traces by running PARSEC inside the
COTSon full-system simulator, because "the multi-level caches in CPU
affect the distribution of accesses dispatched to the main memory".
This example runs the substitute pipeline end to end:

1. synthesize a byte-addressed quad-core CPU access stream,
2. filter it through the Table II cache hierarchy (per-core L1s, a
   shared 2 MB LLC, write-back, write-invalidate coherence),
3. feed the surviving main-memory accesses to the hybrid-memory
   policies and score them with the paper's models.

Run:  python examples/full_system_pipeline.py
"""

from repro.api import (
    HybridMemorySpec,
    characterize,
    cotson_hierarchy,
    densify,
    filter_trace,
    policy_factory,
    render_table,
    simulate,
    synthesize_cpu_trace,
)


def main() -> None:
    # 1. a multi-threaded CPU access stream: 4 cores over a shared
    #    working set plus per-core private regions
    cpu_trace = synthesize_cpu_trace(
        shared_pages=4096,
        private_pages=256,
        requests=400_000,
        cores=4,
        write_ratio=0.3,
        shared_fraction=0.75,
        zipf_alpha=1.15,
        seed=7,
        name="demo-app",
    )
    print(f"CPU trace: {len(cpu_trace):,} accesses from "
          f"{cpu_trace.core_count} cores")

    # 2. cache filtering (the COTSon role)
    hierarchy = cotson_hierarchy()
    memory_trace = densify(filter_trace(cpu_trace, hierarchy))
    stats = hierarchy.stats
    print(f"  L1 hits: {stats.l1_hits:,}   LLC hits: {stats.llc_hits:,}")
    print(f"  coherence invalidations: {stats.coherence_invalidations:,}")
    print(f"  -> {stats.memory_accesses:,} main-memory accesses "
          f"({stats.llc_filter_ratio:.0%} filtered)")

    workload = characterize(memory_trace)
    print(f"  post-LLC write ratio: {workload.write_ratio:.2f} "
          f"(stores became eviction write-backs)")
    print()

    # 3. hybrid-memory simulation over the filtered trace
    spec = HybridMemorySpec.for_footprint(memory_trace.unique_pages)
    rows = []
    for policy_name in ("dram-only", "nvm-only", "clock-dwf", "proposed"):
        run_spec = spec
        if policy_name == "dram-only":
            run_spec = spec.as_dram_only()
        elif policy_name == "nvm-only":
            run_spec = spec.as_nvm_only()
        result = simulate(
            memory_trace, run_spec, policy_factory(policy_name),
            warmup_fraction=0.25,
        )
        rows.append((
            policy_name,
            f"{result.performance.memory_time * 1e9:.1f}",
            f"{result.power.appr * 1e9:.2f}",
            f"{result.hit_ratio:.4f}",
            f"{result.accounting.migrations:,}",
            f"{result.nvm_writes.total:,}",
        ))
    print(render_table(
        ["policy", "mem time (ns)", "APPR (nJ)", "hit ratio",
         "migrations", "NVM writes"],
        rows,
        title=f"hybrid memory on the filtered trace "
              f"({spec.dram_pages} DRAM + {spec.nvm_pages} NVM frames)",
    ))


if __name__ == "__main__":
    main()
