#!/usr/bin/env python3
"""Quickstart: simulate one PARSEC workload on three memory designs.

Renders the ``dedup`` workload, sizes a hybrid memory by the paper's
rule (memory = 75% of the footprint, DRAM = 10% of memory), and
compares the proposed migration scheme against CLOCK-DWF and a
DRAM-only baseline using the paper's AMAT and APPR models.

Run:  python examples/quickstart.py
"""

from repro.api import RunSpec, parsec_workload, render_table


def main() -> None:
    workload = parsec_workload("dedup")
    print(f"workload: {workload.name}")
    print(f"  requests: {len(workload.trace):,} "
          f"({workload.trace.write_ratio:.0%} writes)")
    print(f"  footprint: {workload.trace.unique_pages:,} pages")
    print(f"  memory: {workload.spec.dram_pages} DRAM + "
          f"{workload.spec.nvm_pages} NVM frames "
          f"(PageFactor {workload.spec.page_factor})")
    print()

    rows = []
    for policy_name in ("dram-only", "clock-dwf", "proposed"):
        # RunSpec.core derives the single-module normalisation from the
        # policy name; the rendered workload is reused across specs.
        spec = RunSpec.core("dedup", policy_name)
        result = spec.execute(instance=workload)
        rows.append((
            policy_name,
            f"{result.performance.memory_time * 1e9:.1f}",
            f"{result.power.appr * 1e9:.2f}",
            f"{result.hit_ratio:.4f}",
            f"{result.accounting.migrations_to_dram:,}",
            f"{result.accounting.migrations_to_nvm:,}",
            f"{result.nvm_writes.total:,}",
        ))

    print(render_table(
        ["policy", "mem time (ns)", "APPR (nJ)", "hit ratio",
         "promotions", "demotions", "NVM writes"],
        rows,
        title="dedup on three memory designs",
    ))
    print()
    print("The proposed scheme keeps the hybrid's 80% static-power")
    print("saving while avoiding CLOCK-DWF's migrate-on-every-write")
    print("storms - compare the promotion counts above.")


if __name__ == "__main__":
    main()
