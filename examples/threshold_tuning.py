#!/usr/bin/env python3
"""Threshold tuning: the fixed sweep and the adaptive controller.

Reproduces the Section V-B observation that raytrace's optimal
promotion thresholds differ from the other workloads', then runs the
adaptive-threshold extension (the paper's "ongoing research") and shows
it converging toward the per-workload optimum on its own.

Run:  python examples/threshold_tuning.py
"""

from repro.api import adaptive_comparison, render_table, threshold_sweep


def main() -> None:
    for workload in ("raytrace", "dedup"):
        points = threshold_sweep(workload,
                                 thresholds=(1, 2, 4, 8, 16, 32, 64))
        print(render_table(
            ["read threshold", "memory time (ns)", "APPR (nJ)",
             "promotions"],
            [
                (int(p.value), f"{p.memory_time_ns:.1f}",
                 f"{p.appr_nj:.2f}", p.migrations_to_dram)
                for p in points
            ],
            title=f"threshold sweep: {workload}",
        ))
        best = min(points, key=lambda p: p.memory_time_ns)
        print(f"  -> best read threshold for {workload}: "
              f"{int(best.value)}")
        print()

    print("adaptive controller (starts from the defaults):")
    rows = []
    for workload in ("raytrace", "vips", "dedup"):
        comparison = adaptive_comparison(workload)
        rows.append((
            workload,
            f"{comparison.fixed.memory_time_ns:.1f}",
            f"{comparison.adaptive.memory_time_ns:.1f}",
            f"{100 * comparison.amat_improvement:+.1f}%",
            comparison.final_read_threshold,
            comparison.final_write_threshold,
        ))
    print(render_table(
        ["workload", "fixed (ns)", "adaptive (ns)", "gain",
         "learned read thr", "learned write thr"],
        rows,
    ))


if __name__ == "__main__":
    main()
