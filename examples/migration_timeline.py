#!/usr/bin/env python3
"""Observability walkthrough: watch migrations happen over time.

The paper's Fig. 2/3 argument is that CLOCK-DWF migrates pages that
never earn their keep, while the proposed scheme's threshold-and-window
filter promotes almost exclusively pages that do.  End-of-run counters
can only show the totals; the typed event stream (``repro.obs``) shows
*when* — every promotion and demotion, with the trigger counter that
caused it, bucketed into a time series.

This example attaches an :class:`EventConfig` to two runs on the same
workload, prints the per-interval promotion split, replays a few raw
events from the JSONL trace, and renders the ``timeline`` figure.

Run:  python examples/migration_timeline.py
"""

from repro.api import (
    EventConfig,
    RunSpec,
    build_figure,
    decode_event,
    render_figure,
    render_table,
    ExperimentRunner,
)

WORKLOAD = "canneal"
INTERVALS = 12


def main() -> None:
    config = EventConfig(buckets=INTERVALS, trace=True)
    specs = [
        RunSpec.core(WORKLOAD, policy, events=config)
        for policy in ("clock-dwf", "proposed")
    ]
    results = [spec.execute() for spec in specs]

    print(f"migration timeline on {WORKLOAD}: "
          f"{INTERVALS} intervals, beneficial vs non-beneficial\n")
    for spec, result in zip(specs, results):
        summary = result.events
        ledger = summary.migrations
        rows = {row.index: row for row in ledger.by_interval}
        print(render_table(
            ["interval", "requests", "promotions", "beneficial",
             "non-beneficial", "wasted (us)"],
            [
                (f"{metrics.start:,}-{metrics.end:,}",
                 f"{metrics.requests:,}",
                 rows[index].promotions if index in rows else 0,
                 rows[index].beneficial if index in rows else 0,
                 rows[index].non_beneficial if index in rows else 0,
                 f"{rows[index].wasted_seconds * 1e6:.1f}"
                 if index in rows else "0.0")
                for index, metrics in enumerate(summary.series)
            ],
            title=f"{spec.policy}: {ledger.promotions:,} promotions, "
                  f"{ledger.beneficial_ratio:.0%} beneficial",
        ))
        print()

    # The raw stream behind those tables: one typed JSON object per
    # event, in request order.  Show the first few promotions the
    # proposed scheme performed, with the counter that triggered each.
    proposed = results[-1].events
    promotions = [
        event for event in map(decode_event, proposed.trace_lines)
        if event.kind == "migration" and event.to_dram
    ]
    print("first promotions in the proposed scheme's event stream:")
    for event in promotions[:5]:
        print(f"  request {event.index:>7,}: page {event.page:>5} "
              f"promoted ({event.trigger} counter {event.counter} "
              f">= threshold {event.threshold})")
    print()

    # The same data as a stacked-bar figure (the CLI's
    # ``repro figure timeline`` renders this on the full grid).
    runner = ExperimentRunner()
    print(render_figure(build_figure("timeline", runner)))


if __name__ == "__main__":
    main()
