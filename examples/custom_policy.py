#!/usr/bin/env python3
"""Extending the library: write, register and evaluate your own policy.

Implements a simple *write-frequency* policy — promote an NVM page on
its second write, never on reads — registers it next to the built-ins,
and scores everything on the same workload with the paper's models.
The point is the API: a policy only decides *what* moves; the shared
:class:`~repro.mmu.manager.MemoryManager` does the mechanics and the
accounting, so custom policies are automatically comparable.

Run:  python examples/custom_policy.py
"""

from repro.api import (
    HybridMemoryPolicy,
    HybridMemorySpec,
    LRUQueue,
    MemoryManager,
    PageLocation,
    parsec_workload,
    policy_factory,
    register_policy,
    render_table,
    simulate,
)


class WriteTwicePolicy(HybridMemoryPolicy):
    """Two LRUs; an NVM page is promoted on its second write, ever.

    Unlike the paper's scheme there is no position window: counters
    never reset, so pages written rarely-but-regularly still migrate —
    a useful contrast when studying why the window matters.
    """

    name = "write-twice"

    def __init__(self, mm: MemoryManager) -> None:
        super().__init__(mm)
        self.dram_lru = LRUQueue()
        self.nvm_lru = LRUQueue()

    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(is_write)
        if page in self.dram_lru:
            self.dram_lru.touch(page)
            self.mm.serve_hit(page, is_write)
        elif page in self.nvm_lru:
            node = self.nvm_lru.touch(page)
            self.mm.serve_hit(page, is_write)
            if is_write:
                node.write_counter += 1
                if node.write_counter >= 2:
                    self._promote(page)
        else:
            if not self.mm.has_free(PageLocation.DRAM):
                self._demote_victim()
            self.mm.fault_fill(page, PageLocation.DRAM, is_write)
            self.dram_lru.push_front(page)

    def _promote(self, page: int) -> None:
        self.nvm_lru.remove(page)
        if self.mm.has_free(PageLocation.DRAM):
            self.mm.migrate(page, PageLocation.DRAM)
        else:
            victim = self.dram_lru.pop_lru()
            self.mm.swap(page, victim.page)
            self.nvm_lru.push_front(victim.page)
        self.dram_lru.push_front(page)

    def _demote_victim(self) -> None:
        if not self.mm.has_free(PageLocation.NVM):
            self.mm.evict_to_disk(self.nvm_lru.pop_lru().page)
        victim = self.dram_lru.pop_lru()
        self.mm.migrate(victim.page, PageLocation.NVM)
        self.nvm_lru.push_front(victim.page)


def main() -> None:
    register_policy("write-twice", WriteTwicePolicy)

    workload = parsec_workload("bodytrack")
    rows = []
    for policy_name in ("proposed", "clock-dwf", "write-twice",
                        "never-migrate", "eager-migration"):
        result = simulate(
            workload.trace, workload.spec, policy_factory(policy_name),
            inter_request_gap=workload.inter_request_gap,
            warmup_fraction=workload.warmup_fraction,
        )
        rows.append((
            policy_name,
            f"{result.performance.memory_time * 1e9:.1f}",
            f"{result.power.appr * 1e9:.2f}",
            f"{result.accounting.migrations_to_dram:,}",
            f"{result.nvm_writes.total:,}",
        ))
    print(render_table(
        ["policy", "mem time (ns)", "APPR (nJ)", "promotions",
         "NVM writes"],
        rows,
        title=f"custom policy vs built-ins on {workload.name}",
    ))
    print()
    print("write-twice promotes without the paper's counter window:")
    print("compare its promotion count against 'proposed' to see the")
    print("non-beneficial migrations the window filters out.")


if __name__ == "__main__":
    main()
