#!/usr/bin/env python3
"""NVM-technology sensitivity: PCM today, STT-RAM tomorrow.

Section IV notes that the promotion thresholds are "closely related to
the cost of the migration between DRAM and NVM which is related to the
performance and power characteristics of the employed NVM".  This
study re-runs the comparison with an STT-RAM-like device (faster, less
write-asymmetric, higher endurance) and with hypothetical future PCM
generations, showing how the hybrid trade-off shifts with technology.

Run:  python examples/nvm_technology_study.py
"""

from repro.api import (
    HybridMemorySpec,
    parsec_workload,
    pcm_spec,
    policy_factory,
    render_table,
    simulate,
    sttram_spec,
)


def main() -> None:
    workload = parsec_workload("facesim")
    base = workload.spec
    # keep the calibrated static compensation of the rendered workload
    static_factor = (base.nvm.static_power_per_gb
                     / pcm_spec().static_power_per_gb)

    import dataclasses

    faster_writes = dataclasses.replace(
        base.nvm,
        name="PCM, 2x faster writes",
        write_latency=base.nvm.write_latency / 2,
        write_energy=base.nvm.write_energy / 2,
    )
    technologies = {
        "PCM (Table IV)": base.nvm,
        "PCM, 2x faster writes": faster_writes,
        # `static` here is scaled()'s dimensionless factor, not the
        # PowerBreakdown.static joules field of the same name.
        "STT-RAM-like": sttram_spec().scaled(static=static_factor),  # noqa: R006
        "PCM, half energy": base.nvm.scaled(energy=0.5),
        "PCM, 2x slower": base.nvm.scaled(latency=2.0),
    }

    print(f"workload: {workload.name} "
          f"({workload.trace.write_ratio:.0%} writes)\n")
    rows = []
    for name, nvm in technologies.items():
        spec = HybridMemorySpec(
            dram=base.dram, nvm=nvm, disk=base.disk,
            dram_pages=base.dram_pages, nvm_pages=base.nvm_pages,
        )
        dram_only = simulate(
            workload.trace, spec.as_dram_only(),
            policy_factory("dram-only"),
            inter_request_gap=workload.inter_request_gap,
            warmup_fraction=workload.warmup_fraction,
        )
        for policy in ("clock-dwf", "proposed"):
            result = simulate(
                workload.trace, spec, policy_factory(policy),
                inter_request_gap=workload.inter_request_gap,
                warmup_fraction=workload.warmup_fraction,
            )
            rows.append((
                name,
                policy,
                f"{result.performance.memory_time * 1e9:.1f}",
                f"{result.power.appr / dram_only.power.appr:.2f}",
                f"{result.accounting.migrations:,}",
                f"{result.nvm_writes.total:,}",
            ))
    print(render_table(
        ["NVM technology", "policy", "mem time (ns)", "power vs DRAM",
         "migrations", "NVM writes"],
        rows,
        title="facesim across NVM technologies",
    ))
    print()
    print("Takeaways: faster/cheaper NVM shrinks the migration penalty")
    print("(CLOCK-DWF recovers some ground) while the proposed scheme's")
    print("advantage persists because it avoids the migrations rather")
    print("than just paying less for them.")


if __name__ == "__main__":
    main()
