"""Legacy setup shim: keeps ``pip install -e .`` working on offline
machines where the PEP 660 editable path would need to download wheel."""

from setuptools import setup

setup()
